package sexpr

import (
	"reflect"
	"testing"
)

func TestFormat(t *testing.T) {
	tests := []struct {
		name string
		e    Expr
		want string
	}{
		{"string", StrVal(".php"), `".php"`},
		{"int", IntVal(55), "55"},
		{"negative", IntVal(-3), "-3"},
		{"bool", BoolVal(true), "true"},
		{"null", NullVal{}, "null"},
		{"sym", NewSym("s_ext", String), "s_ext"},
		{
			"paper reachability",
			NewApp(">", Bool,
				NewApp("+", Int, NewSym("s", Int), IntVal(55)),
				IntVal(10)),
			"(> (+ s 55) 10)",
		},
		{
			"paper dst",
			NewApp(".", String,
				NewSym("s_path", String),
				NewApp(".", String,
					StrVal("/"),
					NewApp(".", String, NewSym("s_name", String), NewSym("s_ext", String)))),
			`(. s_path (. "/" (. s_name s_ext)))`,
		},
		{"nil arg", NewApp("f", Unknown, nil), "(f nil)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Format(tt.e); got != tt.want {
				t.Errorf("Format = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestFormatNil(t *testing.T) {
	if Format(nil) != "nil" {
		t.Error("Format(nil)")
	}
}

func TestEqual(t *testing.T) {
	a := NewApp(".", String, NewSym("x", String), StrVal("/"))
	b := NewApp(".", String, NewSym("x", String), StrVal("/"))
	c := NewApp(".", String, NewSym("y", String), StrVal("/"))
	if !Equal(a, b) {
		t.Error("equal structures should be Equal")
	}
	if Equal(a, c) {
		t.Error("different symbols should differ")
	}
	if Equal(StrVal("a"), IntVal(1)) {
		t.Error("different kinds should differ")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("nil handling")
	}
	if !Equal(NullVal{}, NullVal{}) {
		t.Error("null equality")
	}
}

func TestSymbols(t *testing.T) {
	e := NewApp("&&", Bool,
		NewApp(">", Bool, NewSym("a", Int), IntVal(1)),
		NewApp("==", Bool, NewSym("b", String), NewSym("a", Int)))
	syms := Symbols(e)
	names := make([]string, len(syms))
	for i, s := range syms {
		names[i] = s.Name
	}
	if !reflect.DeepEqual(names, []string{"a", "b"}) {
		t.Errorf("symbols = %v", names)
	}
}

func TestStringLits(t *testing.T) {
	e := NewApp(".", String, StrVal("/"), NewApp(".", String, StrVal(".php"), StrVal("/")))
	got := StringLits(e)
	if !reflect.DeepEqual(got, []string{"/", ".php"}) {
		t.Errorf("lits = %v", got)
	}
}

func TestKinds(t *testing.T) {
	if StrVal("x").Kind() != String || IntVal(1).Kind() != Int ||
		BoolVal(true).Kind() != Bool || FloatVal(1).Kind() != Float ||
		(NullVal{}).Kind() != Null {
		t.Error("value kinds")
	}
	if NewSym("s", Array).Kind() != Array {
		t.Error("sym kind")
	}
	if NewApp("f", Unknown).Kind() != Unknown {
		t.Error("app kind")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Bool: "bool", Int: "int", Float: "float", String: "string",
		Array: "array", Null: "null", Unknown: "⊥",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %s, want %s", typ, typ.String(), want)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	e := NewApp("+", Int, IntVal(1), NewApp("-", Int, IntVal(2), IntVal(3)))
	var ops []string
	Walk(e, func(x Expr) {
		if a, ok := x.(*App); ok {
			ops = append(ops, a.Op)
		}
	})
	if !reflect.DeepEqual(ops, []string{"+", "-"}) {
		t.Errorf("walk order = %v", ops)
	}
}

func TestGoString(t *testing.T) {
	if got := GoString(StrVal("x")); got != `sexpr("x")` {
		t.Errorf("GoString = %q", got)
	}
}
