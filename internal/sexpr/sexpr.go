// Package sexpr defines PHP-semantics s-expressions.
//
// The UChecker paper models the destination-filename constraint and the
// reachability constraint of each execution path as s-expressions over
// PHP operators, built-in functions, concrete values and symbolic values
// (Section III-C), e.g.
//
//	se_dst          = (".", s_path, (".", "/", (".", s_name, s_ext)))
//	se_reachability = (>, (strlen, (".", s_name, s_ext)), 5)
//
// This package is the in-memory form of those expressions: the heap-graph
// traversal produces them and the Z3-oriented translator (internal/
// translate) consumes them.
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is the light type attached to symbolic values and operation results.
// The paper's T set contains primitive types, the array type, and the
// unknown type ⊥.
type Type int

// Types.
const (
	Unknown Type = iota // ⊥
	Bool
	Int
	Float
	String
	Array
	Null
)

func (t Type) String() string {
	switch t {
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Array:
		return "array"
	case Null:
		return "null"
	default:
		return "⊥"
	}
}

// Expr is a PHP-semantics s-expression node.
type Expr interface {
	// Kind returns the node's type: concrete values report their value
	// type, symbols their assigned type, and applications their result
	// type.
	Kind() Type
	// write renders the node in s-expression syntax.
	write(sb *strings.Builder)
}

// StrVal is a concrete string.
type StrVal string

// IntVal is a concrete integer.
type IntVal int64

// BoolVal is a concrete boolean.
type BoolVal bool

// FloatVal is a concrete float.
type FloatVal float64

// NullVal is PHP null.
type NullVal struct{}

// Sym is a symbolic value with a unique name and a (possibly unknown) type.
type Sym struct {
	Name string
	Type Type
}

// App is the application of a PHP operator or built-in function to
// arguments. Op uses PHP spellings: ".", ">", "!", "strlen", "basename",
// "array_access", ...
type App struct {
	Op   string
	Type Type // result type
	Args []Expr
}

// Kind implementations.

func (StrVal) Kind() Type   { return String }
func (IntVal) Kind() Type   { return Int }
func (BoolVal) Kind() Type  { return Bool }
func (FloatVal) Kind() Type { return Float }
func (NullVal) Kind() Type  { return Null }
func (s *Sym) Kind() Type   { return s.Type }
func (a *App) Kind() Type   { return a.Type }

func (v StrVal) write(sb *strings.Builder)  { sb.WriteString(strconv.Quote(string(v))) }
func (v IntVal) write(sb *strings.Builder)  { sb.WriteString(strconv.FormatInt(int64(v), 10)) }
func (v BoolVal) write(sb *strings.Builder) { sb.WriteString(strconv.FormatBool(bool(v))) }
func (v FloatVal) write(sb *strings.Builder) {
	sb.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 64))
}
func (NullVal) write(sb *strings.Builder) { sb.WriteString("null") }
func (s *Sym) write(sb *strings.Builder)  { sb.WriteString(s.Name) }

func (a *App) write(sb *strings.Builder) {
	sb.WriteByte('(')
	sb.WriteString(a.Op)
	for _, arg := range a.Args {
		sb.WriteByte(' ')
		if arg == nil {
			sb.WriteString("nil")
			continue
		}
		arg.write(sb)
	}
	sb.WriteByte(')')
}

// Format renders any expression in s-expression syntax, e.g.
// (> (strlen (. s_name s_ext)) 5).
func Format(e Expr) string {
	if e == nil {
		return "nil"
	}
	var sb strings.Builder
	e.write(&sb)
	return sb.String()
}

// NewApp builds an application node.
func NewApp(op string, t Type, args ...Expr) *App {
	return &App{Op: op, Type: t, Args: args}
}

// NewSym builds a symbolic value.
func NewSym(name string, t Type) *Sym { return &Sym{Name: name, Type: t} }

// Equal reports structural equality of two expressions. Symbols compare by
// name and type.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case StrVal:
		y, ok := b.(StrVal)
		return ok && x == y
	case IntVal:
		y, ok := b.(IntVal)
		return ok && x == y
	case BoolVal:
		y, ok := b.(BoolVal)
		return ok && x == y
	case FloatVal:
		y, ok := b.(FloatVal)
		return ok && x == y
	case NullVal:
		_, ok := b.(NullVal)
		return ok
	case *Sym:
		y, ok := b.(*Sym)
		return ok && x.Name == y.Name && x.Type == y.Type
	case *App:
		y, ok := b.(*App)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Symbols returns every distinct symbol appearing in e, in first-occurrence
// order.
func Symbols(e Expr) []*Sym {
	var out []*Sym
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *Sym:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v)
			}
		case *App:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// Walk applies f to every node of e in pre-order.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	if app, ok := e.(*App); ok {
		for _, a := range app.Args {
			Walk(a, f)
		}
	}
}

// StringLits returns every distinct concrete string appearing in e.
func StringLits(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(x Expr) {
		if s, ok := x.(StrVal); ok && !seen[string(s)] {
			seen[string(s)] = true
			out = append(out, string(s))
		}
	})
	return out
}

// GoString aids debugging in test failure messages.
func GoString(e Expr) string { return fmt.Sprintf("sexpr(%s)", Format(e)) }
