package translate

import (
	"testing"

	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

func TestTrlCoercions(t *testing.T) {
	b := nb()
	tr := New(b.g)
	// int -> string
	n := b.sym("n", sexpr.Int)
	if got := tr.Label(n, smt.SortString); got.Op != smt.OpFromInt {
		t.Errorf("int->string = %s", got)
	}
	// bool -> int
	bl := b.sym("b", sexpr.Bool)
	if got := tr.Label(bl, smt.SortInt); got.Op != smt.OpIte {
		t.Errorf("bool->int = %s", got)
	}
	// bool -> string
	if got := tr.Label(bl, smt.SortString); got.Op != smt.OpIte {
		t.Errorf("bool->string = %s", got)
	}
	// int -> bool (truthiness)
	if got := tr.Label(n, smt.SortBool); got.Op != smt.OpNot {
		t.Errorf("int->bool = %s", got)
	}
	// string -> bool (length > 0)
	s := b.sym("s", sexpr.String)
	if got := tr.Label(s, smt.SortBool); got.Op != smt.OpGt {
		t.Errorf("string->bool = %s", got)
	}
}

func TestTrlConstCoercion(t *testing.T) {
	b := nb()
	tr := New(b.g)
	// Integer constant requested as string.
	got := tr.Label(b.num(7), smt.SortString)
	// Simplification is the solver's job; the coercion wraps with
	// str.from_int.
	if got.Op != smt.OpFromInt {
		t.Errorf("int const as string = %s", got)
	}
	// Bool constant as bool.
	if got := tr.Label(b.boolean(false), smt.SortBool); !smt.Equal(got, smt.False()) {
		t.Errorf("bool const = %s", got)
	}
	// Float truncates to int.
	f := b.g.NewConcrete(sexpr.FloatVal(2.9), 1)
	if got := tr.Label(f, smt.SortInt); !smt.Equal(got, smt.Int(2)) {
		t.Errorf("float const = %s", got)
	}
	// Null coerces to sort defaults.
	nl := b.g.NewConcrete(sexpr.NullVal{}, 1)
	if got := tr.Label(nl, smt.SortString); !smt.Equal(got, smt.Str("")) {
		t.Errorf("null as string = %s", got)
	}
	if got := tr.Label(nl, smt.SortInt); !smt.Equal(got, smt.Int(0)) {
		t.Errorf("null as int = %s", got)
	}
}

func TestTrlArithmetic(t *testing.T) {
	b := nb()
	x := b.sym("x", sexpr.Int)
	plus := b.op("+", sexpr.Int, x, b.num(2))
	if got := b.trl(plus, smt.SortInt); !smt.Equal(got, smt.Add(smt.Var("x", smt.SortInt), smt.Int(2))) {
		t.Errorf("+ = %s", got)
	}
	minus := b.op("-", sexpr.Int, x, b.num(1))
	if got := b.trl(minus, smt.SortInt); !smt.Equal(got, smt.Sub(smt.Var("x", smt.SortInt), smt.Int(1))) {
		t.Errorf("- = %s", got)
	}
	negU := b.op("-", sexpr.Int, x)
	if got := b.trl(negU, smt.SortInt); !smt.Equal(got, smt.Neg(smt.Var("x", smt.SortInt))) {
		t.Errorf("unary - = %s", got)
	}
	times := b.op("*", sexpr.Int, x, b.num(3))
	if got := b.trl(times, smt.SortInt); !smt.Equal(got, smt.Mul(smt.Var("x", smt.SortInt), smt.Int(3))) {
		t.Errorf("* = %s", got)
	}
}

func TestTrlOtherComparisons(t *testing.T) {
	b := nb()
	x := b.sym("x", sexpr.Int)
	for _, tc := range []struct {
		op   string
		want smt.Op
	}{
		{"<", smt.OpLt}, {"<=", smt.OpLe}, {">=", smt.OpGe},
	} {
		l := b.op(tc.op, sexpr.Bool, x, b.num(1))
		if got := b.trl(l, smt.SortBool); got.Op != tc.want {
			t.Errorf("%s = %s", tc.op, got)
		}
	}
}

func TestTrlXor(t *testing.T) {
	b := nb()
	l := b.op("xor", sexpr.Bool, b.sym("p", sexpr.Bool), b.sym("q", sexpr.Bool))
	got := b.trl(l, smt.SortBool)
	want := smt.Not(smt.Eq(smt.Var("p", smt.SortBool), smt.Var("q", smt.SortBool)))
	if !smt.Equal(got, want) {
		t.Errorf("xor = %s", got)
	}
}

func TestTrlOrOperator(t *testing.T) {
	b := nb()
	l := b.op("||", sexpr.Bool, b.sym("p", sexpr.Bool), b.sym("n", sexpr.Int))
	got := b.trl(l, smt.SortBool)
	want := smt.Or(
		smt.Var("p", smt.SortBool),
		smt.Not(smt.Eq(smt.Var("n", smt.SortInt), smt.Int(0))),
	)
	if !smt.Equal(got, want) {
		t.Errorf("|| = %s", got)
	}
}

func TestTrlSubstrNegativeStart(t *testing.T) {
	b := nb()
	s := b.sym("s", sexpr.String)
	// substr($s, -4): the last four characters.
	l := b.fn("substr", sexpr.String, s, b.num(-4))
	got := b.trl(l, smt.SortString)
	sv := smt.Var("s", smt.SortString)
	want := smt.Substr(sv, smt.Add(smt.Len(sv), smt.Int(-4)), smt.Int(4))
	if !smt.Equal(got, want) {
		t.Errorf("substr(-4) = %s, want %s", got, want)
	}
	// And it actually selects a ".php" suffix under a model.
	f := smt.Eq(got, smt.Str(".php"))
	st, m, _, err := smt.NewSolver(smt.Options{}).Check(f)
	if err != nil || st != smt.Sat {
		t.Fatalf("status=%v err=%v", st, err)
	}
	v := m["s"].S
	if len(v) < 4 || v[len(v)-4:] != ".php" {
		t.Errorf("witness %q", v)
	}
}

func TestTrlCastBool(t *testing.T) {
	b := nb()
	l := b.op("cast_bool", sexpr.Bool, b.sym("s", sexpr.String))
	got := b.trl(l, smt.SortBool)
	if got.Op != smt.OpGt {
		t.Errorf("cast_bool = %s", got)
	}
}

func TestTrlCastStringAndInt(t *testing.T) {
	b := nb()
	sInt := b.op("cast_int", sexpr.Int, b.sym("s", sexpr.String))
	if got := b.trl(sInt, smt.SortInt); got.Op != smt.OpToInt {
		t.Errorf("cast_int = %s", got)
	}
	iStr := b.op("cast_string", sexpr.String, b.sym("n", sexpr.Int))
	if got := b.trl(iStr, smt.SortString); got.Op != smt.OpFromInt {
		t.Errorf("cast_string = %s", got)
	}
}

func TestTrlLogicalEqualBoolString(t *testing.T) {
	b := nb()
	l := b.op("==", sexpr.Bool, b.sym("flag", sexpr.Bool), b.sym("s", sexpr.String))
	got := b.trl(l, smt.SortBool)
	want := smt.Eq(smt.Var("flag", smt.SortBool), smt.Gt(smt.Len(smt.Var("s", smt.SortString)), smt.Int(0)))
	if !smt.Equal(got, want) {
		t.Errorf("bool==string = %s", got)
	}
}

func TestTrlLogicalEqualIntBool(t *testing.T) {
	b := nb()
	l := b.op("==", sexpr.Bool, b.sym("n", sexpr.Int), b.sym("flag", sexpr.Bool))
	got := b.trl(l, smt.SortBool)
	want := smt.Eq(smt.Var("flag", smt.SortBool), smt.Gt(smt.Var("n", smt.SortInt), smt.Int(0)))
	if !smt.Equal(got, want) {
		t.Errorf("int==bool = %s", got)
	}
}

func TestTrlEqMissingArg(t *testing.T) {
	b := nb()
	l := b.g.NewOp("==", sexpr.Bool, 1) // no edges
	got := New(b.g).Label(l, smt.SortBool)
	if got.Op != smt.OpVar {
		t.Errorf("degenerate == = %s", got)
	}
}

func TestTrlArrayInScalarPosition(t *testing.T) {
	b := nb()
	arr := b.g.NewArray(1)
	got := b.trl(arr, smt.SortString)
	if got.Op != smt.OpVar {
		t.Errorf("array as string = %s", got)
	}
}

func TestTrlIsset(t *testing.T) {
	b := nb()
	l := b.op("isset", sexpr.Bool, b.sym("x", sexpr.Unknown))
	got := b.trl(l, smt.SortBool)
	if got.Op != smt.OpVar || got.Sort() != smt.SortBool {
		t.Errorf("isset = %s", got)
	}
}

func TestTrlEmptyByType(t *testing.T) {
	b := nb()
	l := b.op("empty", sexpr.Bool, b.sym("s", sexpr.String))
	got := b.trl(l, smt.SortBool)
	want := smt.Eq(smt.Len(smt.Var("s", smt.SortString)), smt.Int(0))
	if !smt.Equal(got, want) {
		t.Errorf("empty = %s", got)
	}
}

func TestTrlArrayAccessOpaque(t *testing.T) {
	b := nb()
	l := b.op("array_access", sexpr.Unknown, b.sym("arr", sexpr.Array), b.str("k"))
	got := b.trl(l, smt.SortString)
	if got.Op != smt.OpVar || got.Sort() != smt.SortString {
		t.Errorf("array_access = %s", got)
	}
}

func TestTrlNullObject(t *testing.T) {
	b := nb()
	if got := New(b.g).Label(heapgraph.Label(9999), smt.SortInt); !smt.Equal(got, smt.Int(0)) {
		t.Errorf("unknown label = %s", got)
	}
}

func TestTrlStrposWithOffset(t *testing.T) {
	b := nb()
	l := b.fn("strpos", sexpr.Int, b.sym("h", sexpr.String), b.str("."), b.num(2))
	got := b.trl(l, smt.SortInt)
	want := smt.IndexOf(smt.Var("h", smt.SortString), smt.Str("."), smt.Int(2))
	if !smt.Equal(got, want) {
		t.Errorf("strpos/3 = %s", got)
	}
}

func TestTrlSanitizeNames(t *testing.T) {
	if got := sanitize("weird name/with:stuff"); got != "weird_name_with_stuff" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "x" {
		t.Errorf("sanitize empty = %q", got)
	}
}

// A full guard chain end to end: Table II rows composed (And of == over
// pathinfo-extension, strlen bound, in_array whitelist) stays solvable and
// respects the guards.
func TestTrlComposedGuards(t *testing.T) {
	b := nb()
	ext := b.sym("s_ext", sexpr.String)
	arr := b.g.NewArray(1)
	b.g.SetElem(arr, "0", b.str("zip"))
	b.g.SetElem(arr, "1", b.str("rar"))
	guard := b.op("And", sexpr.Bool,
		b.fn("in_array", sexpr.Bool, ext, arr),
		b.op(">", sexpr.Bool, b.fn("strlen", sexpr.Int, ext), b.num(2)),
	)
	tr := New(b.g)
	f := tr.Label(guard, smt.SortBool)
	st, m, _, err := smt.NewSolver(smt.Options{}).Check(f)
	if err != nil || st != smt.Sat {
		t.Fatalf("status=%v err=%v", st, err)
	}
	if v := m["s_ext"].S; v != "zip" && v != "rar" {
		t.Errorf("witness s_ext = %q", v)
	}
}
