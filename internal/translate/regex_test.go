package translate

import (
	"reflect"
	"testing"

	"repro/internal/sexpr"
	"repro/internal/smt"
)

func TestParseRegexLiteral(t *testing.T) {
	tests := []struct {
		name   string
		pat    string
		ok     bool
		start  bool
		end    bool
		insens bool
		alts   []string
	}{
		{"ext whitelist", `/\.(jpg|jpeg|png)$/`, true, false, true, false, []string{".jpg", ".jpeg", ".png"}},
		{"single suffix", `/\.php$/`, true, false, true, false, []string{".php"}},
		{"case insensitive", `/\.php$/i`, true, false, true, true, []string{".php"}},
		{"prefix", `/^image\//`, true, true, false, false, []string{"image/"}},
		{"full anchor", `/^upload\.zip$/`, true, true, true, false, []string{"upload.zip"}},
		{"contains", `/evil/`, true, false, false, false, []string{"evil"}},
		{"non-capturing group", `/\.(?:a|b)$/`, true, false, true, false, []string{".a", ".b"}},
		{"hash delimiter", `#\.(gif)$#`, true, false, true, false, []string{".gif"}},
		{"brace delimiter", `{\.zip$}`, true, false, true, false, []string{".zip"}},
		{"char class unsupported", `/[a-z]+\.php$/`, false, false, false, false, nil},
		{"backslash-d unsupported", `/\d+/`, false, false, false, false, nil},
		{"star unsupported", `/a*b/`, false, false, false, false, nil},
		{"two groups unsupported", `/(a|b)(c|d)/`, false, false, false, false, nil},
		{"empty", ``, false, false, false, false, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sh, ok := parseRegexLiteral(tt.pat)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if !ok {
				return
			}
			if sh.anchoredStart != tt.start || sh.anchoredEnd != tt.end || sh.caseInsensitive != tt.insens {
				t.Errorf("shape = %+v", sh)
			}
			if !reflect.DeepEqual(sh.alternatives, tt.alts) {
				t.Errorf("alts = %v, want %v", sh.alternatives, tt.alts)
			}
		})
	}
}

func TestPregMatchTermSuffix(t *testing.T) {
	subj := smt.Var("s", smt.SortString)
	term, ok := pregMatchTerm(nil, `/\.(jpg|png)$/`, subj)
	if !ok {
		t.Fatal("pattern should be modelable")
	}
	want := smt.Or(
		smt.SuffixOf(smt.Str(".jpg"), subj),
		smt.SuffixOf(smt.Str(".png"), subj),
	)
	if !smt.Equal(term, want) {
		t.Errorf("term = %s, want %s", term, want)
	}
}

func TestPregMatchTermCaseInsensitive(t *testing.T) {
	subj := smt.Var("s", smt.SortString)
	term, ok := pregMatchTerm(nil, `/\.php$/i`, subj)
	if !ok {
		t.Fatal("modelable")
	}
	// Admits .php and .PHP variants.
	s := term.String()
	if !contains(s, `".php"`) || !contains(s, `".PHP"`) {
		t.Errorf("term = %s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// End-to-end through the translator: a preg_match guard constrains the
// subject, and the guard + extension constraint interplay solves the way
// PHP behaves.
func TestTrlPregMatchGuard(t *testing.T) {
	b := nb()
	name := b.sym("s_name", sexpr.String)
	pat := b.str(`/\.(jpg|png)$/`)
	guard := b.fn("preg_match", sexpr.Int, pat, name)
	// if (preg_match(...)) — truthiness of the int result.
	cond := b.op("!", sexpr.Bool, guard) // !preg_match: no match

	tr := New(b.g)
	noMatch := tr.Label(cond, smt.SortBool)
	// ¬match ∧ name ends with .jpg is unsatisfiable.
	f := smt.And(noMatch, smt.SuffixOf(smt.Str(".jpg"), smt.Var("s_name", smt.SortString)))
	st, _, _, err := smt.NewSolver(smt.Options{}).Check(f)
	if err != nil || st != smt.Unsat {
		t.Errorf("status=%v err=%v, want unsat", st, err)
	}
	// ¬match ∧ name ends with .php is satisfiable.
	f2 := smt.And(noMatch, smt.SuffixOf(smt.Str(".php"), smt.Var("s_name", smt.SortString)))
	st2, model, _, err := smt.NewSolver(smt.Options{}).Check(f2)
	if err != nil || st2 != smt.Sat {
		t.Fatalf("status=%v err=%v, want sat", st2, err)
	}
	if v := model["s_name"].S; !hasSuffix(v, ".php") {
		t.Errorf("witness %v", model)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func TestTrlPregMatchUnmodelableFallsBack(t *testing.T) {
	b := nb()
	pat := b.str(`/\d{4}-[a-z]+/`)
	guard := b.fn("preg_match", sexpr.Int, pat, b.sym("s", sexpr.String))
	got := b.trl(guard, smt.SortInt)
	if got.Op != smt.OpVar {
		t.Errorf("unmodelable pattern should be a fresh symbol, got %s", got)
	}
}

func TestTrlPregMatchDynamicPatternFallsBack(t *testing.T) {
	b := nb()
	guard := b.fn("preg_match", sexpr.Int, b.sym("pat", sexpr.String), b.sym("s", sexpr.String))
	got := b.trl(guard, smt.SortInt)
	if got.Op != smt.OpVar {
		t.Errorf("dynamic pattern should be a fresh symbol, got %s", got)
	}
}
