package translate

import (
	"strings"

	"repro/internal/smt"
)

// This file implements the Section VI "potential solution" the paper
// sketches for its regular-expression gap: "A potential solution is to
// leverage Z3's built-in regular-expression-enabled solver."
//
// Rather than a full regex theory, the translator recognizes the pattern
// shapes upload guards actually use — anchored literals with one
// alternation group, e.g.
//
//	/\.(jpg|jpeg|png)$/     extension whitelist
//	/^image\//              MIME prefix check
//	/\.php$/i               extension blacklist
//
// and translates preg_match($pat, $subj) into the equivalent
// suffix/prefix/contains disjunction. Patterns outside the fragment fall
// back to a fresh symbol, exactly like any other unmodelable operation.

// regexShape is the decoded form of a recognizable pattern.
type regexShape struct {
	anchoredStart bool
	anchoredEnd   bool
	// alternatives are the literal strings the pattern admits; the single
	// alternation group (if any) has been expanded, so /\.(a|b)$/ yields
	// [".a", ".b"].
	alternatives []string
	// caseInsensitive records the /i flag; handled by also admitting the
	// upper-case variants of short alternatives.
	caseInsensitive bool
}

// parseRegexLiteral decodes a PHP regex literal (delimiters + body +
// flags). ok is false when the pattern is outside the supported fragment.
func parseRegexLiteral(pat string) (regexShape, bool) {
	var sh regexShape
	if len(pat) < 2 {
		return sh, false
	}
	delim := pat[0]
	closing := delim
	// Bracket-style delimiters.
	switch delim {
	case '(':
		closing = ')'
	case '[':
		closing = ']'
	case '{':
		closing = '}'
	case '<':
		closing = '>'
	}
	end := strings.LastIndexByte(pat, closing)
	if end <= 0 {
		return sh, false
	}
	body := pat[1:end]
	flags := pat[end+1:]
	for i := 0; i < len(flags); i++ {
		switch flags[i] {
		case 'i':
			sh.caseInsensitive = true
		case 'u', 'm', 's', 'x', 'D', 'U':
			// Accepted but not modeled; m/s/x/U change semantics we do not
			// rely on for the literal fragment.
		default:
			return sh, false
		}
	}
	if strings.HasPrefix(body, "^") {
		sh.anchoredStart = true
		body = body[1:]
	}
	if strings.HasSuffix(body, "$") && !strings.HasSuffix(body, `\$`) {
		sh.anchoredEnd = true
		body = body[:len(body)-1]
	}

	// Split into: literal prefix, optional single (a|b|c) group, literal
	// suffix — all parts literal after unescaping.
	open := strings.IndexByte(body, '(')
	var pre, group, post string
	if open < 0 {
		pre = body
	} else {
		closeIdx := strings.IndexByte(body[open:], ')')
		if closeIdx < 0 {
			return sh, false
		}
		closeIdx += open
		pre = body[:open]
		group = body[open+1 : closeIdx]
		post = body[closeIdx+1:]
		if strings.ContainsAny(post, "(") {
			return sh, false // multiple groups: out of fragment
		}
		// Non-capturing prefix "?:" is fine.
		group = strings.TrimPrefix(group, "?:")
	}

	preLit, ok := unescapeRegexLiteral(pre)
	if !ok {
		return sh, false
	}
	postLit, ok := unescapeRegexLiteral(post)
	if !ok {
		return sh, false
	}
	if group == "" {
		sh.alternatives = []string{preLit + postLit}
		return sh, true
	}
	for _, alt := range strings.Split(group, "|") {
		lit, ok := unescapeRegexLiteral(alt)
		if !ok {
			return sh, false
		}
		sh.alternatives = append(sh.alternatives, preLit+lit+postLit)
	}
	return sh, true
}

// unescapeRegexLiteral converts a regex fragment to the literal string it
// matches, rejecting any metacharacter other than escaped ones.
func unescapeRegexLiteral(s string) (string, bool) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\\':
			if i+1 >= len(s) {
				return "", false
			}
			i++
			next := s[i]
			switch next {
			case '.', '/', '\\', '$', '^', '(', ')', '[', ']', '{', '}', '|', '+', '*', '?', '-':
				sb.WriteByte(next)
			default:
				return "", false // character classes (\d, \w, …): out of fragment
			}
		case '.', '[', ']', '{', '}', '*', '+', '?', '^', '$', '|', '(', ')':
			return "", false // unescaped metacharacter
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), true
}

// pregMatchTerm translates preg_match(pattern, subject) for a concrete
// pattern into a boolean term, or ok=false when the pattern is outside
// the fragment.
func pregMatchTerm(f *smt.Factory, pattern string, subject *smt.Term) (*smt.Term, bool) {
	sh, ok := parseRegexLiteral(pattern)
	if !ok || len(sh.alternatives) == 0 {
		return nil, false
	}
	alts := sh.alternatives
	if sh.caseInsensitive {
		seen := map[string]bool{}
		var widened []string
		for _, a := range alts {
			for _, v := range []string{a, strings.ToLower(a), strings.ToUpper(a)} {
				if !seen[v] {
					seen[v] = true
					widened = append(widened, v)
				}
			}
		}
		alts = widened
	}
	var opts []*smt.Term
	for _, a := range alts {
		switch {
		case sh.anchoredStart && sh.anchoredEnd:
			opts = append(opts, f.Eq(subject, f.Str(a)))
		case sh.anchoredEnd:
			opts = append(opts, f.SuffixOf(f.Str(a), subject))
		case sh.anchoredStart:
			opts = append(opts, f.PrefixOf(f.Str(a), subject))
		default:
			opts = append(opts, f.Contains(subject, f.Str(a)))
		}
	}
	return f.Or(opts...), true
}
