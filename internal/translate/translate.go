// Package translate implements UChecker's Z3-oriented constraint
// translation (Section III-D, Table II of the paper): the trl() function
// that rewrites PHP-semantics expressions — produced by traversing the
// heap graph — into SMT terms.
//
// The translation mitigates the four semantic gaps the paper identifies:
//
//  1. Different operation names (PHP "." vs SMT str.++, strpos vs
//     str.indexof, …).
//  2. Parameter order and missing parameters (str_replace's subject-last
//     order, substr's optional length).
//  3. PHP's dynamic typing vs SMT's static sorts: logical operators and
//     comparisons insert per-type truthiness coercions, exactly the case
//     analysis of Table II's Logical Not / Logical AND / Logical Equal
//     rows.
//  4. Operations SMT cannot express (in_array over unknown arrays,
//     basename of an unrecognizable path, rand(), database reads, …):
//     trl() returns a fresh symbolic value of the expected sort, stable
//     per heap-graph object so both constraints of a sink see the same
//     symbol.
//
// One deliberate deviation: Table II's Logical Not row prints the integer
// case as (not (= e 0)), which is the truthiness of e rather than its
// negation; PHP's !$x for an integer is true iff x == 0, so this
// implementation emits (= e 0).
package translate

import (
	"fmt"
	"strings"

	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

// Translator translates heap-graph values into SMT terms. It memoizes
// per-object fallback symbols so repeated translations of the same object
// (e.g. in the destination constraint and the reachability constraint of
// one sink) agree.
type Translator struct {
	g        *heapgraph.Graph
	fresh    int
	memo     map[memoKey]*smt.Term
	symSorts map[string]smt.Sort
	// f is the hash-consing factory all term construction routes through.
	// nil disables interning (direct construction) with identical output.
	f *smt.Factory
}

type memoKey struct {
	label heapgraph.Label
	sort  smt.Sort
}

// New returns a Translator over the given heap graph, without interning.
func New(g *heapgraph.Graph) *Translator {
	return NewWithFactory(g, nil)
}

// NewWithFactory returns a Translator whose term construction is interned
// through f (nil means no interning). Emitted terms are structurally
// identical either way; with a factory, structurally equal results are
// also pointer-equal, which downstream memoization keys on.
func NewWithFactory(g *heapgraph.Graph, f *smt.Factory) *Translator {
	return &Translator{
		g:        g,
		memo:     map[memoKey]*smt.Term{},
		symSorts: map[string]smt.Sort{},
		f:        f,
	}
}

// Factory returns the translator's term factory (possibly nil), so the
// verdict layer can build its constraint conjunctions in the same interned
// universe the translated terms live in.
func (t *Translator) Factory() *smt.Factory { return t.f }

// Label translates the value rooted at a heap-graph label into a term of
// the wanted sort.
func (t *Translator) Label(l heapgraph.Label, want smt.Sort) *smt.Term {
	if l == heapgraph.Null {
		return t.defaultTerm(want)
	}
	if cached, ok := t.memo[memoKey{l, want}]; ok {
		return cached
	}
	term := t.translate(l, want)
	term = t.coerce(term, want)
	t.memo[memoKey{l, want}] = term
	return term
}

func (t *Translator) defaultTerm(want smt.Sort) *smt.Term {
	switch want {
	case smt.SortBool:
		return t.f.True()
	case smt.SortInt:
		return t.f.Int(0)
	default:
		return t.f.Str("")
	}
}

// freshSym mints a stable fallback symbol for an untranslatable object.
func (t *Translator) freshSym(l heapgraph.Label, hint string, want smt.Sort) *smt.Term {
	key := memoKey{l, want}
	if cached, ok := t.memo[key]; ok {
		return cached
	}
	t.fresh++
	name := fmt.Sprintf("s_%s_%d", sanitize(hint), t.fresh)
	v := t.f.Var(name, want)
	t.memo[key] = v
	return v
}

func sanitize(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "x"
	}
	return sb.String()
}

// symVar returns the SMT variable for a named PHP symbol, keeping one sort
// per name (the first requested); other-sort requests are coerced by the
// caller via coerce().
func (t *Translator) symVar(name string, declared sexpr.Type, want smt.Sort) *smt.Term {
	sort, ok := t.symSorts[name]
	if !ok {
		switch declared {
		case sexpr.String:
			sort = smt.SortString
		case sexpr.Int:
			sort = smt.SortInt
		case sexpr.Bool:
			sort = smt.SortBool
		case sexpr.Float:
			sort = smt.SortInt
		default:
			sort = want
		}
		t.symSorts[name] = sort
	}
	return t.f.Var(name, sort)
}

// coerce converts a term between sorts using PHP's coercion semantics:
// integers to/from their decimal strings, truthiness for booleans.
func (t *Translator) coerce(term *smt.Term, want smt.Sort) *smt.Term {
	have := term.Sort()
	if have == want {
		return term
	}
	switch {
	case have == smt.SortInt && want == smt.SortString:
		return t.f.FromInt(term)
	case have == smt.SortString && want == smt.SortInt:
		return t.f.ToInt(term)
	case have == smt.SortInt && want == smt.SortBool:
		return t.f.Not(t.f.Eq(term, t.f.Int(0)))
	case have == smt.SortString && want == smt.SortBool:
		return t.f.Gt(t.f.Len(term), t.f.Int(0))
	case have == smt.SortBool && want == smt.SortInt:
		return t.f.Ite(term, t.f.Int(1), t.f.Int(0))
	case have == smt.SortBool && want == smt.SortString:
		return t.f.Ite(term, t.f.Str("1"), t.f.Str(""))
	}
	return term
}

// translate dispatches on the object kind.
func (t *Translator) translate(l heapgraph.Label, want smt.Sort) *smt.Term {
	o := t.g.Find(l)
	if o == nil {
		return t.defaultTerm(want)
	}
	switch o.Kind {
	case heapgraph.KindConcrete:
		return t.constTerm(o.Val, want)
	case heapgraph.KindSymbol:
		return t.symVar(o.Name, o.Type, want)
	case heapgraph.KindArray:
		// A whole array in a scalar position: opaque.
		return t.freshSym(l, "array", want)
	default:
		return t.translateApp(l, o, want)
	}
}

func (t *Translator) constTerm(v sexpr.Expr, want smt.Sort) *smt.Term {
	switch x := v.(type) {
	case sexpr.StrVal:
		return t.f.Str(string(x))
	case sexpr.IntVal:
		return t.f.Int(int64(x))
	case sexpr.BoolVal:
		return t.f.Bool(bool(x))
	case sexpr.FloatVal:
		return t.f.Int(int64(x))
	case sexpr.NullVal:
		return t.defaultTerm(want)
	default:
		return t.defaultTerm(want)
	}
}

// translateApp handles operation and built-in function objects per
// Table II.
func (t *Translator) translateApp(l heapgraph.Label, o *heapgraph.Object, want smt.Sort) *smt.Term {
	edges := t.g.Edges(l)
	arg := func(i int, s smt.Sort) *smt.Term {
		if i >= len(edges) {
			return t.freshSym(l, o.Name+"_missing", s)
		}
		return t.Label(edges[i], s)
	}
	argSort := func(i int) sexpr.Type {
		if i >= len(edges) {
			return sexpr.Unknown
		}
		if eo := t.g.Find(edges[i]); eo != nil {
			return eo.Type
		}
		return sexpr.Unknown
	}

	switch o.Name {
	// --- String concat: (str.++ e1 e2) ---
	case ".":
		return t.f.Concat(arg(0, smt.SortString), arg(1, smt.SortString))

	// --- String replace: parameter reorder per Table II ---
	case "str_replace", "str_ireplace":
		// PHP: str_replace($search, $replace, $subject)
		// SMT: (str.replace subject search replace)
		return t.f.Replace(arg(2, smt.SortString), arg(0, smt.SortString), arg(1, smt.SortString))

	// --- String to int ---
	case "intval", "cast_int":
		if argSort(0) == sexpr.Int {
			return arg(0, smt.SortInt)
		}
		return t.f.ToInt(arg(0, smt.SortString))

	// --- Index of string ---
	case "strpos":
		from := t.f.Int(0)
		if len(edges) >= 3 {
			from = arg(2, smt.SortInt)
		}
		return t.f.IndexOf(arg(0, smt.SortString), arg(1, smt.SortString), from)

	// --- String length ---
	case "strlen":
		return t.f.Len(arg(0, smt.SortString))

	// --- Logical not (and empty(), which is !truthy) ---
	case "!", "NOT", "not", "empty":
		return t.truthyNot(edges, l, o)

	// --- Logical and/or with dynamic-type coercions ---
	case "And", "&&", "and":
		return t.f.And(t.truthy(edges, 0, l, o), t.truthy(edges, 1, l, o))
	case "Or", "||", "or":
		return t.f.Or(t.truthy(edges, 0, l, o), t.truthy(edges, 1, l, o))
	case "xor":
		a, b := t.truthy(edges, 0, l, o), t.truthy(edges, 1, l, o)
		return t.f.Not(t.f.Eq(a, b))

	// --- Equality with dynamic-type case analysis ---
	case "==", "===":
		return t.logicalEqual(edges, l, o, o.Name == "===")
	case "!=", "!==", "<>":
		return t.f.Not(t.logicalEqual(edges, l, o, o.Name == "!=="))

	// --- Integer comparisons (strings coerced via str.to.int) ---
	case "<":
		return t.f.Lt(arg(0, smt.SortInt), arg(1, smt.SortInt))
	case ">":
		return t.f.Gt(arg(0, smt.SortInt), arg(1, smt.SortInt))
	case "<=":
		return t.f.Le(arg(0, smt.SortInt), arg(1, smt.SortInt))
	case ">=":
		return t.f.Ge(arg(0, smt.SortInt), arg(1, smt.SortInt))

	// --- Arithmetic ---
	case "+":
		return t.f.Add(arg(0, smt.SortInt), arg(1, smt.SortInt))
	case "-":
		if len(edges) == 1 {
			return t.f.Neg(arg(0, smt.SortInt))
		}
		return t.f.Sub(arg(0, smt.SortInt), arg(1, smt.SortInt))
	case "*":
		return t.f.Mul(arg(0, smt.SortInt), arg(1, smt.SortInt))

	// --- Array membership: expand over recognized arrays ---
	case "in_array":
		return t.inArray(edges, l, o)

	// --- Substring, with the optional-length default of Table II ---
	case "substr":
		s := arg(0, smt.SortString)
		start := arg(1, smt.SortInt)
		length := t.f.Len(s)
		if len(edges) >= 3 {
			length = arg(2, smt.SortInt)
		}
		// PHP negative start counts from the end; model the common
		// substr($s, -n) idiom.
		if start.Op == smt.OpIntConst && start.I < 0 {
			offset := start.I
			start = t.f.Add(t.f.Len(s), t.f.Int(offset))
			if len(edges) < 3 {
				length = t.f.Int(-offset)
			}
		}
		return t.f.Substr(s, start, length)

	// --- Tail element of a recognized array ---
	case "end", "array_pop":
		if len(edges) == 1 {
			if info := t.g.Array(edges[0]); info != nil && len(info.Keys) > 0 {
				return t.Label(info.Elems[info.Keys[len(info.Keys)-1]], want)
			}
		}
		return t.freshSym(l, "end", smt.SortString)

	// --- File name ---
	case "basename":
		return t.basename(edges, l, o)

	// --- Case/whitespace transforms preserve the suffix/extension
	//     structure closely enough for the extension constraint; pass
	//     through (documented approximation). ---
	case "strtolower", "strtoupper", "trim", "ltrim", "rtrim",
		"stripslashes", "sanitize_file_name", "urldecode", "rawurldecode":
		if len(edges) >= 1 {
			return arg(0, smt.SortString)
		}
		return t.freshSym(l, o.Name, smt.SortString)

	// --- Regular-expression guards (Section VI extension; see regex.go).
	//     preg_match returns int 1/0 in PHP, so the boolean match term is
	//     wrapped in an ite. ---
	case "preg_match":
		if len(edges) >= 2 {
			if po := t.g.Find(edges[0]); po != nil && po.Kind == heapgraph.KindConcrete {
				if pat, isStr := po.Val.(sexpr.StrVal); isStr {
					subj := t.Label(edges[1], smt.SortString)
					if match, ok := pregMatchTerm(t.f, string(pat), subj); ok {
						return t.f.Ite(match, t.f.Int(1), t.f.Int(0))
					}
				}
			}
		}
		return t.freshSym(l, "preg_match", smt.SortInt)

	// --- Ternary ---
	case "ite":
		c := t.truthy(edges, 0, l, o)
		return t.f.Ite(c, arg(1, want), arg(2, want))

	// --- Casts ---
	case "cast_string":
		return arg(0, smt.SortString)
	case "cast_bool":
		return t.truthy(edges, 0, l, o)

	// --- Coalesce: left operand unless null; nulls are not tracked, so
	//     keep the left value. ---
	case "??":
		return arg(0, want)

	// --- isset: runtime state unknown -> fresh boolean ---
	case "isset":
		return t.freshSym(l, "isset", smt.SortBool)

	default:
		// Unknown function/operation: fresh symbol of the expected sort
		// (the paper's exception rule), typed by the object's declared
		// result type when it has one.
		sort := want
		switch o.Type {
		case sexpr.String:
			sort = smt.SortString
		case sexpr.Int:
			sort = smt.SortInt
		case sexpr.Bool:
			sort = smt.SortBool
		}
		return t.freshSym(l, o.Name, sort)
	}
}

// truthy translates edge i as a boolean using PHP truthiness per the
// argument's type (Table II's Logical AND row):
//
//	bool   -> itself
//	int    -> (not (= e 0))
//	string -> (> (str.len e) 0)
func (t *Translator) truthy(edges []heapgraph.Label, i int, l heapgraph.Label, o *heapgraph.Object) *smt.Term {
	if i >= len(edges) {
		return t.freshSym(l, o.Name+"_truthy", smt.SortBool)
	}
	term := t.Label(edges[i], t.naturalSort(edges[i]))
	switch term.Sort() {
	case smt.SortBool:
		return term
	case smt.SortInt:
		return t.f.Not(t.f.Eq(term, t.f.Int(0)))
	default:
		return t.f.Gt(t.f.Len(term), t.f.Int(0))
	}
}

// truthyNot is PHP's !e per type (see the package comment for the
// deviation from Table II's int row):
//
//	bool   -> (not e)
//	int    -> (= e 0)
//	string -> (= (str.len e) 0)
func (t *Translator) truthyNot(edges []heapgraph.Label, l heapgraph.Label, o *heapgraph.Object) *smt.Term {
	if len(edges) == 0 {
		return t.freshSym(l, "not", smt.SortBool)
	}
	term := t.Label(edges[0], t.naturalSort(edges[0]))
	switch term.Sort() {
	case smt.SortBool:
		return t.f.Not(term)
	case smt.SortInt:
		return t.f.Eq(term, t.f.Int(0))
	default:
		return t.f.Eq(t.f.Len(term), t.f.Int(0))
	}
}

// naturalSort picks the SMT sort an object most naturally translates to.
func (t *Translator) naturalSort(l heapgraph.Label) smt.Sort {
	o := t.g.Find(l)
	if o == nil {
		return smt.SortBool
	}
	switch o.Type {
	case sexpr.Bool:
		return smt.SortBool
	case sexpr.Int, sexpr.Float:
		return smt.SortInt
	case sexpr.String:
		return smt.SortString
	}
	// Unknown-typed symbols: default by kind of value they hold.
	if o.Kind == heapgraph.KindConcrete {
		switch o.Val.(type) {
		case sexpr.BoolVal:
			return smt.SortBool
		case sexpr.IntVal:
			return smt.SortInt
		case sexpr.StrVal:
			return smt.SortString
		}
	}
	if o.Kind == heapgraph.KindSymbol {
		if s, ok := t.symSorts[o.Name]; ok {
			return s
		}
	}
	return smt.SortString
}

// logicalEqual implements Table II's Logical Equal case analysis.
func (t *Translator) logicalEqual(edges []heapgraph.Label, l heapgraph.Label, o *heapgraph.Object, strict bool) *smt.Term {
	if len(edges) < 2 {
		return t.freshSym(l, "eq", smt.SortBool)
	}
	sa, sb := t.naturalSort(edges[0]), t.naturalSort(edges[1])
	a := t.Label(edges[0], sa)
	b := t.Label(edges[1], sb)
	// Recompute sorts after translation (symbols may resolve differently).
	sa, sb = a.Sort(), b.Sort()
	switch {
	case sa == sb:
		return t.f.Eq(a, b)
	case strict:
		// Different types are never identical under ===.
		return t.f.False()
	case sa == smt.SortBool && sb == smt.SortInt:
		return t.f.Eq(a, t.f.Gt(b, t.f.Int(0)))
	case sa == smt.SortInt && sb == smt.SortBool:
		return t.f.Eq(b, t.f.Gt(a, t.f.Int(0)))
	case sa == smt.SortBool && sb == smt.SortString:
		return t.f.Eq(a, t.f.Gt(t.f.Len(b), t.f.Int(0)))
	case sa == smt.SortString && sb == smt.SortBool:
		return t.f.Eq(b, t.f.Gt(t.f.Len(a), t.f.Int(0)))
	case sa == smt.SortInt && sb == smt.SortString:
		return t.f.Eq(a, t.f.ToInt(b))
	case sa == smt.SortString && sb == smt.SortInt:
		return t.f.Eq(b, t.f.ToInt(a))
	default:
		return t.f.Eq(a, t.coerce(b, sa))
	}
}

// inArray implements Table II's Array Check: when the haystack is a
// recognized array, expand to a disjunction of equalities; otherwise a
// fresh boolean.
func (t *Translator) inArray(edges []heapgraph.Label, l heapgraph.Label, o *heapgraph.Object) *smt.Term {
	if len(edges) >= 2 {
		if info := t.g.Array(edges[1]); info != nil {
			if len(info.Keys) == 0 {
				return t.f.False()
			}
			needle := t.Label(edges[0], smt.SortString)
			var opts []*smt.Term
			for _, k := range info.Keys {
				elem := t.Label(info.Elems[k], smt.SortString)
				opts = append(opts, t.f.Eq(needle, elem))
			}
			return t.f.Or(opts...)
		}
	}
	return t.freshSym(l, "in_array", smt.SortBool)
}

// basename implements Table II's File Name rule: a concrete path folds to
// its final component; a concatenation whose constant parts contain no
// path separator passes through unchanged (uploads' structured names);
// anything else becomes a fresh string symbol.
func (t *Translator) basename(edges []heapgraph.Label, l heapgraph.Label, o *heapgraph.Object) *smt.Term {
	if len(edges) == 0 {
		return t.freshSym(l, "basename", smt.SortString)
	}
	term := t.Label(edges[0], smt.SortString)
	if term.Op == smt.OpStrConst {
		s := term.S
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		return t.f.Str(s)
	}
	if noSeparator(term) {
		return term
	}
	return t.freshSym(l, "basename", smt.SortString)
}

// noSeparator reports that no constant part of the term contains '/'.
func noSeparator(term *smt.Term) bool {
	if term.Op == smt.OpStrConst {
		return !strings.Contains(term.S, "/")
	}
	for _, a := range term.Args {
		if !noSeparator(a) {
			return false
		}
	}
	return true
}
