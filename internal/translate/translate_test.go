package translate

import (
	"strings"
	"testing"

	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

// builder helps construct heap-graph values tersely.
type builder struct {
	g *heapgraph.Graph
}

func nb() *builder { return &builder{g: heapgraph.New()} }

func (b *builder) str(s string) heapgraph.Label   { return b.g.NewConcrete(sexpr.StrVal(s), 1) }
func (b *builder) num(i int64) heapgraph.Label    { return b.g.NewConcrete(sexpr.IntVal(i), 1) }
func (b *builder) boolean(v bool) heapgraph.Label { return b.g.NewConcrete(sexpr.BoolVal(v), 1) }
func (b *builder) sym(name string, t sexpr.Type) heapgraph.Label {
	return b.g.NewSymbol(name, t, 1)
}

func (b *builder) op(name string, t sexpr.Type, args ...heapgraph.Label) heapgraph.Label {
	l := b.g.NewOp(name, t, 1)
	for _, a := range args {
		b.g.AddEdge(l, a)
	}
	return l
}

func (b *builder) fn(name string, t sexpr.Type, args ...heapgraph.Label) heapgraph.Label {
	l := b.g.NewFunc(name, t, 1)
	for _, a := range args {
		b.g.AddEdge(l, a)
	}
	return l
}

func (b *builder) trl(l heapgraph.Label, want smt.Sort) *smt.Term {
	return New(b.g).Label(l, want)
}

func TestTrlConstants(t *testing.T) {
	b := nb()
	if got := b.trl(b.str(".php"), smt.SortString); !smt.Equal(got, smt.Str(".php")) {
		t.Errorf("str const = %s", got)
	}
	if got := b.trl(b.num(5), smt.SortInt); !smt.Equal(got, smt.Int(5)) {
		t.Errorf("int const = %s", got)
	}
	if got := b.trl(b.boolean(true), smt.SortBool); !smt.Equal(got, smt.True()) {
		t.Errorf("bool const = %s", got)
	}
}

func TestTrlSymbol(t *testing.T) {
	b := nb()
	got := b.trl(b.sym("s_ext", sexpr.String), smt.SortString)
	want := smt.Var("s_ext", smt.SortString)
	if !smt.Equal(got, want) {
		t.Errorf("sym = %s", got)
	}
}

func TestTrlSymbolSortStability(t *testing.T) {
	// The same symbol requested at two sorts keeps its first sort; the
	// second request is coerced.
	b := nb()
	tr := New(b.g)
	s := b.sym("s_x", sexpr.Unknown)
	first := tr.Label(s, smt.SortString)
	if first.Sort() != smt.SortString {
		t.Fatalf("first = %v", first.Sort())
	}
	second := tr.Label(s, smt.SortInt)
	if second.Sort() != smt.SortInt {
		t.Fatalf("second sort = %v", second.Sort())
	}
	if second.Op != smt.OpToInt {
		t.Errorf("second = %s, want str.to.int coercion", second)
	}
}

// Table II row: String concat.
func TestTrlConcat(t *testing.T) {
	b := nb()
	l := b.op(".", sexpr.String, b.sym("a", sexpr.String), b.str("/"))
	got := b.trl(l, smt.SortString)
	want := smt.Concat(smt.Var("a", smt.SortString), smt.Str("/"))
	if !smt.Equal(got, want) {
		t.Errorf("concat = %s", got)
	}
}

// Table II row: String replace — parameter reorder.
func TestTrlStrReplace(t *testing.T) {
	b := nb()
	search, repl, subj := b.str("x"), b.str("y"), b.sym("s", sexpr.String)
	l := b.fn("str_replace", sexpr.String, search, repl, subj)
	got := b.trl(l, smt.SortString)
	want := smt.Replace(smt.Var("s", smt.SortString), smt.Str("x"), smt.Str("y"))
	if !smt.Equal(got, want) {
		t.Errorf("str_replace = %s, want %s", got, want)
	}
}

// Table II row: String to int.
func TestTrlIntval(t *testing.T) {
	b := nb()
	l := b.fn("intval", sexpr.Int, b.sym("s", sexpr.String))
	got := b.trl(l, smt.SortInt)
	want := smt.ToInt(smt.Var("s", smt.SortString))
	if !smt.Equal(got, want) {
		t.Errorf("intval = %s", got)
	}
}

// Table II row: Index of string.
func TestTrlStrpos(t *testing.T) {
	b := nb()
	l := b.fn("strpos", sexpr.Int, b.sym("h", sexpr.String), b.str("."))
	got := b.trl(l, smt.SortInt)
	want := smt.IndexOf(smt.Var("h", smt.SortString), smt.Str("."), smt.Int(0))
	if !smt.Equal(got, want) {
		t.Errorf("strpos = %s", got)
	}
}

// Table II row: String length.
func TestTrlStrlen(t *testing.T) {
	b := nb()
	l := b.fn("strlen", sexpr.Int, b.sym("s", sexpr.String))
	got := b.trl(l, smt.SortInt)
	if !smt.Equal(got, smt.Len(smt.Var("s", smt.SortString))) {
		t.Errorf("strlen = %s", got)
	}
}

// Table II row: Logical Not, three type cases.
func TestTrlLogicalNot(t *testing.T) {
	b := nb()
	boolCase := b.op("!", sexpr.Bool, b.sym("b", sexpr.Bool))
	if got := b.trl(boolCase, smt.SortBool); !smt.Equal(got, smt.Not(smt.Var("b", smt.SortBool))) {
		t.Errorf("!bool = %s", got)
	}
	intCase := b.op("!", sexpr.Bool, b.sym("i", sexpr.Int))
	if got := b.trl(intCase, smt.SortBool); !smt.Equal(got, smt.Eq(smt.Var("i", smt.SortInt), smt.Int(0))) {
		t.Errorf("!int = %s", got)
	}
	strCase := b.op("!", sexpr.Bool, b.sym("s", sexpr.String))
	want := smt.Eq(smt.Len(smt.Var("s", smt.SortString)), smt.Int(0))
	if got := b.trl(strCase, smt.SortBool); !smt.Equal(got, want) {
		t.Errorf("!string = %s", got)
	}
}

// Table II row: Logical AND with mixed types.
func TestTrlLogicalAnd(t *testing.T) {
	b := nb()
	l := b.op("And", sexpr.Bool, b.sym("i", sexpr.Int), b.sym("b", sexpr.Bool))
	got := b.trl(l, smt.SortBool)
	want := smt.And(
		smt.Not(smt.Eq(smt.Var("i", smt.SortInt), smt.Int(0))),
		smt.Var("b", smt.SortBool),
	)
	if !smt.Equal(got, want) {
		t.Errorf("And = %s, want %s", got, want)
	}
}

func TestTrlLogicalAndStringInt(t *testing.T) {
	b := nb()
	l := b.op("And", sexpr.Bool, b.sym("s", sexpr.String), b.sym("i", sexpr.Int))
	got := b.trl(l, smt.SortBool)
	want := smt.And(
		smt.Gt(smt.Len(smt.Var("s", smt.SortString)), smt.Int(0)),
		smt.Not(smt.Eq(smt.Var("i", smt.SortInt), smt.Int(0))),
	)
	if !smt.Equal(got, want) {
		t.Errorf("And = %s, want %s", got, want)
	}
}

// Table II row: Logical Equal, same and mixed types.
func TestTrlLogicalEqual(t *testing.T) {
	b := nb()
	same := b.op("==", sexpr.Bool, b.sym("a", sexpr.String), b.str("zip"))
	if got := b.trl(same, smt.SortBool); !smt.Equal(got, smt.Eq(smt.Var("a", smt.SortString), smt.Str("zip"))) {
		t.Errorf("== same = %s", got)
	}
	mixed := b.op("==", sexpr.Bool, b.sym("i", sexpr.Int), b.sym("s", sexpr.String))
	want := smt.Eq(smt.Var("i", smt.SortInt), smt.ToInt(smt.Var("s", smt.SortString)))
	if got := b.trl(mixed, smt.SortBool); !smt.Equal(got, want) {
		t.Errorf("== int/string = %s", got)
	}
	boolInt := b.op("==", sexpr.Bool, b.sym("b", sexpr.Bool), b.sym("i", sexpr.Int))
	want2 := smt.Eq(smt.Var("b", smt.SortBool), smt.Gt(smt.Var("i", smt.SortInt), smt.Int(0)))
	if got := b.trl(boolInt, smt.SortBool); !smt.Equal(got, want2) {
		t.Errorf("== bool/int = %s", got)
	}
}

func TestTrlStrictEqualMismatch(t *testing.T) {
	b := nb()
	l := b.op("===", sexpr.Bool, b.sym("i", sexpr.Int), b.sym("s", sexpr.String))
	if got := b.trl(l, smt.SortBool); !smt.Equal(got, smt.False()) {
		t.Errorf("=== mismatch = %s, want false", got)
	}
}

func TestTrlNotEqual(t *testing.T) {
	b := nb()
	l := b.op("!==", sexpr.Bool, b.sym("e", sexpr.String), b.str("zip"))
	got := b.trl(l, smt.SortBool)
	want := smt.Not(smt.Eq(smt.Var("e", smt.SortString), smt.Str("zip")))
	if !smt.Equal(got, want) {
		t.Errorf("!== = %s", got)
	}
}

// Table II row: Array Check (in_array) over a recognized array.
func TestTrlInArrayRecognized(t *testing.T) {
	b := nb()
	arr := b.g.NewArray(1)
	b.g.SetElem(arr, "0", b.str("jpg"))
	b.g.SetElem(arr, "1", b.str("png"))
	l := b.fn("in_array", sexpr.Bool, b.sym("e", sexpr.String), arr)
	got := b.trl(l, smt.SortBool)
	want := smt.Or(
		smt.Eq(smt.Var("e", smt.SortString), smt.Str("jpg")),
		smt.Eq(smt.Var("e", smt.SortString), smt.Str("png")),
	)
	if !smt.Equal(got, want) {
		t.Errorf("in_array = %s, want %s", got, want)
	}
}

func TestTrlInArrayUnknown(t *testing.T) {
	b := nb()
	l := b.fn("in_array", sexpr.Bool, b.sym("e", sexpr.String), b.sym("h", sexpr.Array))
	got := b.trl(l, smt.SortBool)
	if got.Op != smt.OpVar || got.Sort() != smt.SortBool {
		t.Errorf("in_array unknown = %s, want fresh bool symbol", got)
	}
}

// Table II row: Substring with and without length.
func TestTrlSubstr(t *testing.T) {
	b := nb()
	s := b.sym("s", sexpr.String)
	two := b.fn("substr", sexpr.String, s, b.num(1))
	got := b.trl(two, smt.SortString)
	want := smt.Substr(smt.Var("s", smt.SortString), smt.Int(1), smt.Len(smt.Var("s", smt.SortString)))
	if !smt.Equal(got, want) {
		t.Errorf("substr/2 = %s", got)
	}
	three := b.fn("substr", sexpr.String, s, b.num(1), b.num(3))
	got3 := b.trl(three, smt.SortString)
	want3 := smt.Substr(smt.Var("s", smt.SortString), smt.Int(1), smt.Int(3))
	if !smt.Equal(got3, want3) {
		t.Errorf("substr/3 = %s", got3)
	}
}

// Table II row: Tail Element.
func TestTrlEndRecognized(t *testing.T) {
	b := nb()
	arr := b.g.NewArray(1)
	b.g.SetElem(arr, "0", b.str("name"))
	b.g.SetElem(arr, "1", b.sym("s_ext", sexpr.String))
	l := b.fn("end", sexpr.Unknown, arr)
	got := b.trl(l, smt.SortString)
	if !smt.Equal(got, smt.Var("s_ext", smt.SortString)) {
		t.Errorf("end = %s", got)
	}
}

func TestTrlEndUnknown(t *testing.T) {
	b := nb()
	l := b.fn("end", sexpr.Unknown, b.sym("h", sexpr.Array))
	got := b.trl(l, smt.SortString)
	if got.Op != smt.OpVar {
		t.Errorf("end unknown = %s, want fresh symbol", got)
	}
}

// Table II row: File Name (basename).
func TestTrlBasename(t *testing.T) {
	b := nb()
	concrete := b.fn("basename", sexpr.String, b.str("/var/www/shell.php"))
	if got := b.trl(concrete, smt.SortString); !smt.Equal(got, smt.Str("shell.php")) {
		t.Errorf("basename concrete = %s", got)
	}
	// Structured upload name with no separator: passes through.
	name := b.op(".", sexpr.String, b.sym("s_name", sexpr.String), b.sym("s_ext", sexpr.String))
	structured := b.fn("basename", sexpr.String, name)
	got := b.trl(structured, smt.SortString)
	want := smt.Concat(smt.Var("s_name", smt.SortString), smt.Var("s_ext", smt.SortString))
	if !smt.Equal(got, want) {
		t.Errorf("basename structured = %s", got)
	}
	// Separator present and symbolic: fresh symbol.
	path := b.op(".", sexpr.String, b.sym("dir", sexpr.String), b.str("/"))
	opaque := b.fn("basename", sexpr.String, path)
	if got := b.trl(opaque, smt.SortString); got.Op != smt.OpVar {
		t.Errorf("basename opaque = %s, want fresh symbol", got)
	}
}

func TestTrlComparisons(t *testing.T) {
	b := nb()
	l := b.op(">", sexpr.Bool, b.fn("strlen", sexpr.Int, b.sym("s", sexpr.String)), b.num(5))
	got := b.trl(l, smt.SortBool)
	want := smt.Gt(smt.Len(smt.Var("s", smt.SortString)), smt.Int(5))
	if !smt.Equal(got, want) {
		t.Errorf("> = %s", got)
	}
}

func TestTrlUnknownFunctionFreshSymbol(t *testing.T) {
	b := nb()
	l := b.fn("wp_mystery", sexpr.Unknown, b.sym("x", sexpr.String))
	got1 := b.trl(l, smt.SortString)
	if got1.Op != smt.OpVar {
		t.Fatalf("unknown fn = %s, want symbol", got1)
	}
	// Stability: translating the same object again yields the same symbol.
	tr := New(b.g)
	a := tr.Label(l, smt.SortString)
	b2 := tr.Label(l, smt.SortString)
	if !smt.Equal(a, b2) {
		t.Error("fallback symbol not stable across translations")
	}
}

func TestTrlIte(t *testing.T) {
	b := nb()
	l := b.op("ite", sexpr.String, b.sym("c", sexpr.Bool), b.str("a"), b.str("b"))
	got := b.trl(l, smt.SortString)
	want := smt.Ite(smt.Var("c", smt.SortBool), smt.Str("a"), smt.Str("b"))
	if !smt.Equal(got, want) {
		t.Errorf("ite = %s", got)
	}
}

func TestTrlPassThroughTransforms(t *testing.T) {
	b := nb()
	for _, fn := range []string{"strtolower", "trim", "sanitize_file_name"} {
		l := b.fn(fn, sexpr.String, b.sym("s", sexpr.String))
		if got := b.trl(l, smt.SortString); !smt.Equal(got, smt.Var("s", smt.SortString)) {
			t.Errorf("%s = %s, want pass-through", fn, got)
		}
	}
}

func TestTrlCoalesce(t *testing.T) {
	b := nb()
	l := b.op("??", sexpr.Unknown, b.sym("a", sexpr.String), b.str("fallback"))
	got := b.trl(l, smt.SortString)
	if !smt.Equal(got, smt.Var("a", smt.SortString)) {
		t.Errorf("?? = %s", got)
	}
}

// The paper's worked example (Section III-D): Constraint-2 and
// Constraint-3 for Listing 4 translate to the exact SMT shapes given in
// the text.
func TestTrlPaperListing4Constraints(t *testing.T) {
	b := nb()
	sPath := b.sym("s_path", sexpr.String)
	sName := b.sym("s_name", sexpr.String)
	sExt := b.sym("s_ext", sexpr.String)
	// se_dst = (. s_path (. "/" (. s_name s_ext)))
	nameExt := b.op(".", sexpr.String, sName, sExt)
	slashName := b.op(".", sexpr.String, b.str("/"), nameExt)
	seDst := b.op(".", sexpr.String, sPath, slashName)
	// se_reach = (> (strlen (. s_name s_ext)) 5)
	seReach := b.op(">", sexpr.Bool, b.fn("strlen", sexpr.Int, nameExt), b.num(5))

	tr := New(b.g)
	c2 := smt.SuffixOf(smt.Str(".php"), tr.Label(seDst, smt.SortString))
	c3 := tr.Label(seReach, smt.SortBool)

	wantC2 := smt.SuffixOf(smt.Str(".php"),
		smt.Concat(smt.Var("s_path", smt.SortString),
			smt.Concat(smt.Str("/"),
				smt.Concat(smt.Var("s_name", smt.SortString), smt.Var("s_ext", smt.SortString)))))
	if !smt.Equal(c2, wantC2) {
		t.Errorf("C2 = %s\nwant %s", c2, wantC2)
	}
	wantC3 := smt.Gt(smt.Len(smt.Concat(smt.Var("s_name", smt.SortString), smt.Var("s_ext", smt.SortString))), smt.Int(5))
	if !smt.Equal(c3, wantC3) {
		t.Errorf("C3 = %s\nwant %s", c3, wantC3)
	}

	// And the conjunction is satisfiable, as the paper's detection requires.
	solver := smt.NewSolver(smt.Options{})
	status, model, _, err := solver.Check(smt.And(c2, c3))
	if err != nil || status != smt.Sat {
		t.Fatalf("status=%v err=%v", status, err)
	}
	full := model["s_path"].S + "/" + model["s_name"].S + model["s_ext"].S
	if !strings.HasSuffix(full, ".php") {
		t.Errorf("witness %v does not end in .php", model)
	}
}

func TestTrlNullLabel(t *testing.T) {
	b := nb()
	if got := b.trl(heapgraph.Null, smt.SortBool); !smt.Equal(got, smt.True()) {
		t.Errorf("null bool = %s", got)
	}
	if got := b.trl(heapgraph.Null, smt.SortString); !smt.Equal(got, smt.Str("")) {
		t.Errorf("null string = %s", got)
	}
}
