// Package callgraph builds the extended call graphs of UChecker's
// vulnerability-oriented locality analysis (Section III-A of the paper).
//
// Each node represents a PHP file, a function, a read access to the
// $_FILES superglobal, or an invocation of a file-upload sink
// (move_uploaded_file or file_put_contents). Directed edges represent:
//
//   - file a includes/requires file b,
//   - file a calls function b in its body,
//   - function a calls function b,
//   - a file or function accesses $_FILES.
//
// Recursive call edges are not built, so every graph is acyclic (the paper
// relies on this to make each connected call graph a tree and the lowest
// common ancestor well defined).
package callgraph

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/phpast"
)

// Kind classifies a node.
type Kind int

// Node kinds.
const (
	FileNode Kind = iota
	FuncNode
	FilesNode // read access to $_FILES
	SinkNode  // move_uploaded_file() / file_put_contents()
)

func (k Kind) String() string {
	switch k {
	case FileNode:
		return "file"
	case FuncNode:
		return "func"
	case FilesNode:
		return "$_FILES"
	default:
		return "sink"
	}
}

// Sinks is the set of file-writing built-ins treated as upload sinks, in
// lower case. The paper names move_uploaded_file() and file_put_content();
// the latter is spelled file_put_contents in real PHP, so both are
// accepted. copy() appears in real-world vulnerable plugins (e.g.
// WooCommerce Custom Profile Picture uses move_uploaded_file; others use
// copy) and is included.
var Sinks = map[string]bool{
	"move_uploaded_file": true,
	"file_put_contents":  true,
	"file_put_content":   true,
	"copy":               true,
	"rename":             true,
}

// Node is one node of the extended call graph.
type Node struct {
	Kind Kind
	// Name is the file path for FileNode, the (lower-cased) function name
	// for FuncNode, "$_FILES" for FilesNode, and the sink function name for
	// SinkNode.
	Name string
	// File is the file the node belongs to (declaration site for
	// functions). Empty for the shared $_FILES node.
	File string
	// Func is the declaration body for FuncNode (nil otherwise). Method
	// nodes carry the method body.
	Func *phpast.FuncDecl
	// Line is the declaration or occurrence line.
	Line int
}

func (n *Node) String() string {
	switch n.Kind {
	case FileNode:
		return n.Name
	case FuncNode:
		return n.Name + "()"
	case FilesNode:
		return "$_FILES"
	default:
		return n.Name + "()"
	}
}

// Graph is an extended call graph over a set of files.
type Graph struct {
	Nodes []*Node
	// Succ maps each node to its ordered successors.
	Succ map[*Node][]*Node

	files       map[string]*Node // file path -> node
	funcs       map[string]*Node // lower-case function name -> node
	filesAccess *Node            // the shared $_FILES node
	sinks       map[string]*Node // sink name -> node
}

// Build constructs the extended call graph for the given parsed files.
func Build(files []*phpast.File) *Graph {
	g := &Graph{
		Succ:  map[*Node][]*Node{},
		files: map[string]*Node{},
		funcs: map[string]*Node{},
		sinks: map[string]*Node{},
	}
	// Pass 1: declare file and function nodes so calls can resolve forward
	// references.
	for _, f := range files {
		fn := &Node{Kind: FileNode, Name: f.Name, File: f.Name, Line: 1}
		g.Nodes = append(g.Nodes, fn)
		g.files[f.Name] = fn
		g.declareFuncs(f.Name, f.Stmts)
	}
	// Pass 2: edges.
	for _, f := range files {
		fileNode := g.files[f.Name]
		body := topLevelBody(f.Stmts)
		g.scanScope(fileNode, f.Name, body)
		// Function bodies.
		g.scanDecls(f.Name, f.Stmts)
	}
	return g
}

// declareFuncs registers all function and method declarations found
// anywhere in the statement list (PHP hoists declarations).
func (g *Graph) declareFuncs(file string, stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				name := strings.ToLower(d.Name)
				if _, exists := g.funcs[name]; !exists {
					fn := &Node{Kind: FuncNode, Name: name, File: file, Func: d, Line: d.P.Line}
					g.Nodes = append(g.Nodes, fn)
					g.funcs[name] = fn
				}
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					name := strings.ToLower(d.Name + "::" + m.Name)
					if _, exists := g.funcs[name]; exists {
						continue
					}
					decl := &phpast.FuncDecl{P: m.P, Name: name, Params: m.Params, Body: m.Body, EndLine: m.EndLine}
					fn := &Node{Kind: FuncNode, Name: name, File: file, Func: decl, Line: m.P.Line}
					g.Nodes = append(g.Nodes, fn)
					g.funcs[name] = fn
					// Also register the bare method name as a fallback
					// resolution target when unambiguous.
					bare := strings.ToLower(m.Name)
					if _, exists := g.funcs[bare]; !exists {
						g.funcs[bare] = fn
					}
				}
			}
			return true
		})
	}
}

// topLevelBody returns the statements of a file or function body excluding
// nested declarations (those are separate nodes).
func topLevelBody(stmts []phpast.Stmt) []phpast.Stmt {
	out := make([]phpast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s.(type) {
		case *phpast.FuncDecl, *phpast.ClassDecl:
			continue
		}
		out = append(out, s)
	}
	return out
}

// scanDecls walks declarations and scans each function/method body as its
// own scope.
func (g *Graph) scanDecls(file string, stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				if fn := g.funcs[strings.ToLower(d.Name)]; fn != nil && fn.Func == d {
					g.scanScope(fn, file, d.Body)
				}
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					name := strings.ToLower(d.Name + "::" + m.Name)
					if fn := g.funcs[name]; fn != nil {
						g.scanScope(fn, file, m.Body)
					}
				}
			}
			return true
		})
	}
}

// scanScope adds edges from the scope node for calls, includes, $_FILES
// accesses and sink invocations found in the statements, excluding nested
// function declarations (their bodies are their own scopes). Parameter
// defaults count as part of the scope, matching the paper's note that a
// function's "parameter input" can access $_FILES.
func (g *Graph) scanScope(from *Node, file string, stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch x := n.(type) {
			case *phpast.FuncDecl, *phpast.ClassDecl:
				return false // nested declaration: separate scope
			case *phpast.Var:
				if x.Name == "_FILES" {
					g.addEdge(from, g.filesNode())
				}
			case *phpast.Call:
				name, ok := phpast.CalleeName(x)
				if !ok {
					return true
				}
				if Sinks[name] {
					g.addEdge(from, g.sinkNode(name))
					return true
				}
				if callee, ok := g.funcs[name]; ok {
					g.addEdge(from, callee)
				}
				// String-literal callbacks passed to registration functions
				// (add_action/add_filter/register_*) create an edge to the
				// named callback: WordPress invokes it from this scope.
				if isCallbackRegistrar(name) {
					for _, a := range x.Args {
						if lit, ok := a.(*phpast.StringLit); ok {
							if callee, ok := g.funcs[strings.ToLower(lit.Value)]; ok {
								g.addEdge(from, callee)
							}
						}
					}
				}
			case *phpast.MethodCall:
				if callee, ok := g.funcs[strings.ToLower(x.Method)]; ok {
					g.addEdge(from, callee)
				}
			case *phpast.StaticCall:
				if callee, ok := g.funcs[strings.ToLower(x.Class+"::"+x.Method)]; ok {
					g.addEdge(from, callee)
				} else if callee, ok := g.funcs[strings.ToLower(x.Method)]; ok {
					g.addEdge(from, callee)
				}
			case *phpast.Include:
				if target := g.resolveInclude(file, x); target != nil {
					g.addEdge(from, target)
				}
			}
			return true
		})
	}
}

// isCallbackRegistrar reports WordPress-style hook registration functions
// whose string arguments name callbacks.
func isCallbackRegistrar(name string) bool {
	switch name {
	case "add_action", "add_filter", "register_activation_hook",
		"register_deactivation_hook", "add_shortcode", "wp_ajax_handler":
		return true
	}
	return strings.HasPrefix(name, "add_") && strings.HasSuffix(name, "_hook")
}

// resolveInclude resolves include/require with a constant path against the
// known file set, trying the raw path, the path relative to the including
// file's directory, and a basename match.
func (g *Graph) resolveInclude(fromFile string, inc *phpast.Include) *Node {
	lit := constPath(inc.X)
	if lit == "" {
		return nil
	}
	if n, ok := g.files[lit]; ok {
		return n
	}
	rel := path.Join(path.Dir(fromFile), lit)
	if n, ok := g.files[rel]; ok {
		return n
	}
	base := path.Base(lit)
	var match *Node
	for name, n := range g.files {
		if path.Base(name) == base {
			if match != nil {
				return nil // ambiguous
			}
			match = n
		}
	}
	return match
}

// constPath extracts a constant path from an include argument, tolerating
// the common "dirname(__FILE__) . '/x.php'" and "__DIR__ . '/x.php'"
// shapes by keeping only the trailing literal.
func constPath(e phpast.Expr) string {
	switch x := e.(type) {
	case *phpast.StringLit:
		return x.Value
	case *phpast.Binary:
		if x.Op == "." {
			if lit := constPath(x.R); lit != "" {
				return strings.TrimPrefix(lit, "/")
			}
		}
	}
	return ""
}

func (g *Graph) filesNode() *Node {
	if g.filesAccess == nil {
		g.filesAccess = &Node{Kind: FilesNode, Name: "$_FILES"}
		g.Nodes = append(g.Nodes, g.filesAccess)
	}
	return g.filesAccess
}

func (g *Graph) sinkNode(name string) *Node {
	if n, ok := g.sinks[name]; ok {
		return n
	}
	n := &Node{Kind: SinkNode, Name: name}
	g.sinks[name] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

// addEdge inserts a directed edge unless it already exists or would create
// a cycle (recursive calls are dropped per the paper).
func (g *Graph) addEdge(from, to *Node) {
	if from == to {
		return
	}
	for _, s := range g.Succ[from] {
		if s == to {
			return
		}
	}
	if g.reaches(to, from) {
		return // would close a cycle
	}
	g.Succ[from] = append(g.Succ[from], to)
}

// reaches reports whether dst is reachable from src.
func (g *Graph) reaches(src, dst *Node) bool {
	if src == dst {
		return true
	}
	seen := map[*Node]bool{}
	var dfs func(*Node) bool
	dfs = func(n *Node) bool {
		if n == dst {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range g.Succ[n] {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(src)
}

// Reaches reports whether any node of the given kind is reachable from n
// (including n itself).
func (g *Graph) Reaches(n *Node, kind Kind) bool {
	seen := map[*Node]bool{}
	var dfs func(*Node) bool
	dfs = func(x *Node) bool {
		if x.Kind == kind {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range g.Succ[x] {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(n)
}

// Func returns the function node with the given (case-insensitive) name.
func (g *Graph) Func(name string) *Node { return g.funcs[strings.ToLower(name)] }

// File returns the file node for the given path.
func (g *Graph) File(name string) *Node { return g.files[name] }

// FilesAccessNode returns the shared $_FILES node, or nil when no scope
// accesses $_FILES.
func (g *Graph) FilesAccessNode() *Node { return g.filesAccess }

// SinkNodes returns all sink nodes, sorted by name for determinism.
func (g *Graph) SinkNodes() []*Node {
	out := make([]*Node, 0, len(g.sinks))
	for _, n := range g.sinks {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dot renders the graph in Graphviz format for debugging and the
// cmd/phpparse tool.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph callgraph {\n")
	id := map[*Node]int{}
	for i, n := range g.Nodes {
		id[n] = i
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", i, n.String(), shapeOf(n.Kind))
	}
	for _, n := range g.Nodes {
		for _, s := range g.Succ[n] {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", id[n], id[s])
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func shapeOf(k Kind) string {
	switch k {
	case FileNode:
		return "box"
	case FuncNode:
		return "ellipse"
	default:
		return "diamond"
	}
}
