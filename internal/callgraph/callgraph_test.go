package callgraph

import (
	"strings"
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparser"
)

func parseFiles(t *testing.T, srcs map[string]string) []*phpast.File {
	t.Helper()
	var files []*phpast.File
	for name, src := range srcs {
		f, errs := phpparser.Parse(name, src)
		if len(errs) > 0 {
			t.Fatalf("%s: %v", name, errs)
		}
		files = append(files, f)
	}
	return files
}

// listing1 is Listing 1 of the paper; Figure 3 shows its extended call
// graph: example1.php → {getFileName(), handle_uploader()},
// getFileName → $_FILES, handle_uploader → {$_FILES, move_uploaded_file()}.
const listing1 = `<?php
function getFileName($file){
	return $_FILES[$file]['name'];
}

function handle_uploader($file, $savePath){
	$path_array = wp_upload_dir();
	$pathAndName = $path_array['path'] . "/" . $savePath;
	if (!move_uploaded_file($_FILES[$file]['tmp_name'], $pathAndName)) {
		return false;
	}
	return true;
}

if (!handle_uploader("upload_file", getFileName("upload_file"))) {
	echo "File_Uploaded_failure!";
}
`

func TestBuildListing1Figure3(t *testing.T) {
	files := parseFiles(t, map[string]string{"example1.php": listing1})
	g := Build(files)

	fileN := g.File("example1.php")
	if fileN == nil {
		t.Fatal("missing file node")
	}
	getName := g.Func("getfilename")
	handle := g.Func("handle_uploader")
	if getName == nil || handle == nil {
		t.Fatal("missing function nodes")
	}

	succOf := func(n *Node) map[string]bool {
		out := map[string]bool{}
		for _, s := range g.Succ[n] {
			out[s.String()] = true
		}
		return out
	}

	// Figure 3 edges.
	fs := succOf(fileN)
	if !fs["getfilename()"] || !fs["handle_uploader()"] {
		t.Errorf("file successors = %v", fs)
	}
	gs := succOf(getName)
	if !gs["$_FILES"] {
		t.Errorf("getFileName successors = %v", gs)
	}
	hs := succOf(handle)
	if !hs["$_FILES"] || !hs["move_uploaded_file()"] {
		t.Errorf("handle_uploader successors = %v", hs)
	}

	// The file node reaches both special nodes.
	if !g.Reaches(fileN, FilesNode) || !g.Reaches(fileN, SinkNode) {
		t.Error("file should reach $_FILES and sink")
	}
}

func TestBuildIncludeEdges(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"main.php": `<?php include 'lib.php'; handle($_FILES['f']);`,
		"lib.php":  `<?php function handle($f) { move_uploaded_file($f['tmp_name'], "/tmp/x"); }`,
	})
	g := Build(files)
	mainN := g.File("main.php")
	libN := g.File("lib.php")
	found := false
	for _, s := range g.Succ[mainN] {
		if s == libN {
			found = true
		}
	}
	if !found {
		t.Error("missing include edge main.php -> lib.php")
	}
	if !g.Reaches(mainN, SinkNode) {
		t.Error("main should reach sink through handle()")
	}
}

func TestBuildIncludeRelativeAndDirname(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"plugin/main.php":   `<?php require_once(dirname(__FILE__) . '/inc/up.php');`,
		"plugin/inc/up.php": `<?php move_uploaded_file($_FILES['f']['tmp_name'], $d);`,
	})
	g := Build(files)
	mainN := g.File("plugin/main.php")
	if !g.Reaches(mainN, SinkNode) {
		t.Error("dirname(__FILE__)-style include not resolved")
	}
}

func TestBuildNoRecursionEdges(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"rec.php": `<?php
function a($n) { return b($n); }
function b($n) { return a($n - 1); }
a(3);`,
	})
	g := Build(files)
	// a -> b must exist; b -> a must be dropped (cycle).
	aN, bN := g.Func("a"), g.Func("b")
	hasEdge := func(x, y *Node) bool {
		for _, s := range g.Succ[x] {
			if s == y {
				return true
			}
		}
		return false
	}
	if !hasEdge(aN, bN) {
		t.Error("missing a -> b")
	}
	if hasEdge(bN, aN) {
		t.Error("recursive edge b -> a must be dropped")
	}
}

func TestBuildSelfRecursionDropped(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"self.php": `<?php function f($n) { return f($n - 1); } f(3);`,
	})
	g := Build(files)
	fN := g.Func("f")
	for _, s := range g.Succ[fN] {
		if s == fN {
			t.Error("self edge must be dropped")
		}
	}
}

func TestBuildMethodNodes(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"cls.php": `<?php
class Uploader {
	public function save($f) {
		move_uploaded_file($_FILES[$f]['tmp_name'], "/tmp/y");
	}
}
$u = new Uploader();
$u->save("pic");`,
	})
	g := Build(files)
	m := g.Func("uploader::save")
	if m == nil {
		t.Fatal("missing method node")
	}
	if !g.Reaches(m, SinkNode) || !g.Reaches(m, FilesNode) {
		t.Error("method should reach sink and $_FILES")
	}
	// The file calls the method (resolved via method-call scan).
	if !g.Reaches(g.File("cls.php"), SinkNode) {
		t.Error("file should reach sink through method call")
	}
}

func TestBuildCallbackRegistrar(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"hook.php": `<?php
function my_upload_handler() {
	move_uploaded_file($_FILES['f']['tmp_name'], "/tmp/z");
}
add_action('wp_ajax_upload', 'my_upload_handler');`,
	})
	g := Build(files)
	if !g.Reaches(g.File("hook.php"), SinkNode) {
		t.Error("callback registered via add_action should create an edge")
	}
}

func TestBuildFilePutContents(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"fpc.php": `<?php file_put_contents($dst, $_FILES['f']['tmp_name']);`,
	})
	g := Build(files)
	sinks := g.SinkNodes()
	if len(sinks) != 1 || sinks[0].Name != "file_put_contents" {
		t.Errorf("sinks = %v", sinks)
	}
}

func TestBuildNoFilesAccess(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"plain.php": `<?php echo "hello";`,
	})
	g := Build(files)
	if g.FilesAccessNode() != nil {
		t.Error("no $_FILES node expected")
	}
	if g.Reaches(g.File("plain.php"), SinkNode) {
		t.Error("no sink expected")
	}
}

func TestDotOutput(t *testing.T) {
	files := parseFiles(t, map[string]string{"example1.php": listing1})
	g := Build(files)
	dot := g.Dot()
	for _, want := range []string{"digraph callgraph", "$_FILES", "move_uploaded_file()", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestGraphAcyclicInvariant(t *testing.T) {
	// Arbitrary tangle of calls: graph must stay acyclic.
	files := parseFiles(t, map[string]string{
		"tangle.php": `<?php
function f1() { f2(); f3(); }
function f2() { f3(); f1(); }
function f3() { f1(); f2(); }
f1();`,
	})
	g := Build(files)
	// DFS cycle check.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Node]int{}
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		color[n] = gray
		for _, s := range g.Succ[n] {
			switch color[s] {
			case gray:
				return false
			case white:
				if !visit(s) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for _, n := range g.Nodes {
		if color[n] == white && !visit(n) {
			t.Fatal("cycle detected in extended call graph")
		}
	}
}

func TestLookupAccessors(t *testing.T) {
	files := parseFiles(t, map[string]string{"example1.php": listing1})
	g := Build(files)
	if g.Func("GETFILENAME") == nil {
		t.Error("Func lookup must be case-insensitive")
	}
	if g.Func("missing_function") != nil {
		t.Error("unknown function should be nil")
	}
	if g.File("nope.php") != nil {
		t.Error("unknown file should be nil")
	}
	if g.FilesAccessNode() == nil {
		t.Error("listing1 accesses $_FILES")
	}
}

func TestSinkNodesSorted(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"s.php": `<?php
file_put_contents($a, $_FILES['x']['tmp_name']);
move_uploaded_file($_FILES['x']['tmp_name'], $b);
copy($_FILES['x']['tmp_name'], $c);
`,
	})
	g := Build(files)
	sinks := g.SinkNodes()
	if len(sinks) != 3 {
		t.Fatalf("sinks = %d", len(sinks))
	}
	for i := 1; i < len(sinks); i++ {
		if sinks[i-1].Name > sinks[i].Name {
			t.Errorf("sinks not sorted: %v", sinks)
		}
	}
}

func TestAmbiguousIncludeBasenameSkipped(t *testing.T) {
	files := parseFiles(t, map[string]string{
		"a/util.php": `<?php function a_util() {}`,
		"b/util.php": `<?php function b_util() {}`,
		"main.php":   `<?php include 'util.php';`,
	})
	g := Build(files)
	// Two candidates share the basename; the edge must not be guessed.
	for _, s := range g.Succ[g.File("main.php")] {
		if s.Kind == FileNode {
			t.Errorf("ambiguous include resolved to %v", s)
		}
	}
}

func TestNodeStringForms(t *testing.T) {
	files := parseFiles(t, map[string]string{"example1.php": listing1})
	g := Build(files)
	if got := g.File("example1.php").String(); got != "example1.php" {
		t.Errorf("file string = %q", got)
	}
	if got := g.Func("getfilename").String(); got != "getfilename()" {
		t.Errorf("func string = %q", got)
	}
	if got := g.FilesAccessNode().String(); got != "$_FILES" {
		t.Errorf("files string = %q", got)
	}
}
