package phpparser

import (
	"testing"

	"repro/internal/phpast"
)

func TestParseAlternativeLoops(t *testing.T) {
	src := `<?php
while ($a): $x = 1; endwhile;
for ($i = 0; $i < 3; $i++): $y = $i; endfor;
foreach ($xs as $v): $z = $v; endforeach;
switch ($m):
	case 1:
		$w = 1;
		break;
	default:
		$w = 2;
endswitch;
`
	f := mustParse(t, src)
	if len(f.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*phpast.While); !ok {
		t.Errorf("0: %T", f.Stmts[0])
	}
	if _, ok := f.Stmts[1].(*phpast.For); !ok {
		t.Errorf("1: %T", f.Stmts[1])
	}
	if _, ok := f.Stmts[2].(*phpast.Foreach); !ok {
		t.Errorf("2: %T", f.Stmts[2])
	}
	sw, ok := f.Stmts[3].(*phpast.Switch)
	if !ok || len(sw.Cases) != 2 {
		t.Errorf("3: %T %+v", f.Stmts[3], sw)
	}
}

func TestParseNamespaceAndUse(t *testing.T) {
	src := `<?php
namespace Vendor\Plugin;
use Other\Thing as Alias;
$x = 1;
`
	f := mustParse(t, src)
	found := false
	phpast.Walk(f, func(n phpast.Node) bool {
		if v, ok := n.(*phpast.Var); ok && v.Name == "x" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("code after namespace/use lost")
	}
}

func TestParseQualifiedCalls(t *testing.T) {
	e := exprOf(t, `<?php \Vendor\Util::helper($a);`)
	sc, ok := e.(*phpast.StaticCall)
	if !ok || sc.Class != "Vendor\\Util" || sc.Method != "helper" {
		t.Fatalf("got %+v", e)
	}
}

func TestParseNewVariableClass(t *testing.T) {
	e := exprOf(t, `<?php $o = new $cls(1);`)
	n := e.(*phpast.Assign).Value.(*phpast.New)
	if n.Class != "$cls" {
		t.Errorf("class = %q", n.Class)
	}
}

func TestParseAnonymousClass(t *testing.T) {
	e := exprOf(t, `<?php $o = new class { public function f() {} };`)
	n := e.(*phpast.Assign).Value.(*phpast.New)
	if n.Class != "class@anonymous" {
		t.Errorf("class = %q", n.Class)
	}
}

func TestParseInstanceof(t *testing.T) {
	e := exprOf(t, `<?php $ok = $x instanceof WP_Error;`)
	b := e.(*phpast.Assign).Value.(*phpast.Binary)
	if b.Op != "instanceof" {
		t.Fatalf("op = %s", b.Op)
	}
	if n, ok := b.R.(*phpast.Name); !ok || n.Value != "WP_Error" {
		t.Errorf("rhs = %+v", b.R)
	}
}

func TestParseCurlyStringOffset(t *testing.T) {
	e := exprOf(t, `<?php $c = $s{0};`)
	dim, ok := e.(*phpast.Assign).Value.(*phpast.ArrayDim)
	if !ok {
		t.Fatalf("got %T", e.(*phpast.Assign).Value)
	}
	if i, ok := dim.Index.(*phpast.IntLit); !ok || i.Value != 0 {
		t.Errorf("index = %+v", dim.Index)
	}
}

func TestParseAssignRef(t *testing.T) {
	e := exprOf(t, `<?php $a = &$b;`)
	a := e.(*phpast.Assign)
	if !a.ByRef {
		t.Error("ByRef not set")
	}
}

func TestParseByRefForeach(t *testing.T) {
	s := firstStmt(t, `<?php foreach ($xs as &$v) { $v = 1; }`)
	fe := s.(*phpast.Foreach)
	if !fe.ByRef {
		t.Error("ByRef not set")
	}
}

func TestParseSpread(t *testing.T) {
	// Variadic parameter.
	fd := firstStmt(t, `<?php function f(...$args) {}`).(*phpast.FuncDecl)
	if len(fd.Params) != 1 || !fd.Params[0].Variadic {
		t.Errorf("params = %+v", fd.Params)
	}
}

func TestParseInterfaceDecl(t *testing.T) {
	src := `<?php
interface Uploader {
	public function save($f);
}
`
	cd := firstStmt(t, src).(*phpast.ClassDecl)
	if !cd.IsInterface || len(cd.Methods) != 1 || cd.Methods[0].Body != nil {
		t.Errorf("decl = %+v", cd)
	}
}

func TestParseAbstractClass(t *testing.T) {
	src := `<?php
abstract class Base {
	abstract public function run($x);
	public function helper() { return 1; }
}
`
	cd := firstStmt(t, src).(*phpast.ClassDecl)
	if len(cd.Methods) != 2 {
		t.Fatalf("methods = %d", len(cd.Methods))
	}
	if cd.Methods[0].Body != nil {
		t.Error("abstract method should have nil body")
	}
}

func TestParseTypedProperty(t *testing.T) {
	src := `<?php
class C {
	public string $name = "x";
}
`
	cd := firstStmt(t, src).(*phpast.ClassDecl)
	if len(cd.Props) != 1 || cd.Props[0].Name != "name" {
		t.Errorf("props = %+v", cd.Props)
	}
}

func TestParseHeredocInCode(t *testing.T) {
	src := "<?php\n$tpl = <<<HTML\n<form action=\"upload.php\">\nHTML;\n$x = 1;\n"
	f := mustParse(t, src)
	if len(f.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestParseConstStatement(t *testing.T) {
	src := `<?php const MAX_SIZE = 1024;`
	s := firstStmt(t, src)
	es, ok := s.(*phpast.ExprStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	a := es.X.(*phpast.Assign)
	if c, ok := a.Target.(*phpast.ConstFetch); !ok || c.Name != "MAX_SIZE" {
		t.Errorf("target = %+v", a.Target)
	}
}

func TestParseCloseTagEndsStatement(t *testing.T) {
	// A statement can be terminated by ?> without a semicolon.
	src := `<?php $x = 1 ?>`
	f := mustParse(t, src)
	if len(f.Stmts) == 0 {
		t.Fatal("statement lost")
	}
}

func TestParseListShorthandNulls(t *testing.T) {
	e := exprOf(t, `<?php list(, $b) = $pair;`)
	le := e.(*phpast.Assign).Target.(*phpast.ListExpr)
	if len(le.Items) != 2 || le.Items[0] != nil || le.Items[1] == nil {
		t.Errorf("items = %+v", le.Items)
	}
}

func TestParseExprStmtRecoveryInsideBlock(t *testing.T) {
	src := `<?php
function f() {
	$a = @;
	$b = 2;
}
`
	f, errs := Parse("bad.php", src)
	if len(errs) == 0 {
		t.Error("expected errors")
	}
	var sawB bool
	phpast.Walk(f, func(n phpast.Node) bool {
		if v, ok := n.(*phpast.Var); ok && v.Name == "b" {
			sawB = true
		}
		return true
	})
	if !sawB {
		t.Error("recovery lost $b inside function")
	}
}

func TestParseMethodNamedList(t *testing.T) {
	src := `<?php
class C {
	public function list() { return 1; }
}
$r = $c->list();
`
	f := mustParse(t, src)
	if len(f.Stmts) < 2 {
		t.Fatal("stmts missing")
	}
}

func TestParseBreakContinueLevels(t *testing.T) {
	src := `<?php
while ($a) {
	while ($b) {
		break 2;
		continue 2;
	}
}
`
	f := mustParse(t, src)
	var brk *phpast.Break
	phpast.Walk(f, func(n phpast.Node) bool {
		if b, ok := n.(*phpast.Break); ok {
			brk = b
		}
		return true
	})
	if brk == nil || brk.Level != 2 {
		t.Errorf("break = %+v", brk)
	}
}

func TestParseExprEntry(t *testing.T) {
	e, errs := ParseExpr("inline", `$a['k'] . "/x"`)
	if len(errs) > 0 {
		t.Fatalf("errs: %v", errs)
	}
	b, ok := e.(*phpast.Binary)
	if !ok || b.Op != "." {
		t.Errorf("got %+v", e)
	}
}
