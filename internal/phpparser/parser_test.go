package phpparser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/phpast"
)

// mustParse parses src and fails the test on any error.
func mustParse(t *testing.T, src string) *phpast.File {
	t.Helper()
	f, errs := Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

// firstStmt returns the first statement of a parsed file.
func firstStmt(t *testing.T, src string) phpast.Stmt {
	t.Helper()
	f := mustParse(t, src)
	if len(f.Stmts) == 0 {
		t.Fatal("no statements")
	}
	return f.Stmts[0]
}

// exprOf extracts the expression from the first ExprStmt.
func exprOf(t *testing.T, src string) phpast.Expr {
	t.Helper()
	s := firstStmt(t, src)
	es, ok := s.(*phpast.ExprStmt)
	if !ok {
		t.Fatalf("first stmt is %T, want ExprStmt", s)
	}
	return es.X
}

func TestParseAssignment(t *testing.T) {
	e := exprOf(t, "<?php $a = 1;")
	a, ok := e.(*phpast.Assign)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if v, ok := a.Target.(*phpast.Var); !ok || v.Name != "a" {
		t.Errorf("target = %+v", a.Target)
	}
	if i, ok := a.Value.(*phpast.IntLit); !ok || i.Value != 1 {
		t.Errorf("value = %+v", a.Value)
	}
}

func TestParseCompoundAssign(t *testing.T) {
	tests := []struct {
		src string
		op  string
	}{
		{"<?php $a += 1;", "+"},
		{"<?php $a .= 'x';", "."},
		{"<?php $a **= 2;", "**"},
		{"<?php $a ??= 2;", "??"},
	}
	for _, tt := range tests {
		e := exprOf(t, tt.src)
		a, ok := e.(*phpast.Assign)
		if !ok || a.Op != tt.op {
			t.Errorf("%s: got %+v", tt.src, e)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 must parse as 1 + (2 * 3).
	e := exprOf(t, "<?php $x = 1 + 2 * 3;")
	a := e.(*phpast.Assign)
	b, ok := a.Value.(*phpast.Binary)
	if !ok || b.Op != "+" {
		t.Fatalf("value = %+v", a.Value)
	}
	r, ok := b.R.(*phpast.Binary)
	if !ok || r.Op != "*" {
		t.Errorf("right = %+v", b.R)
	}
}

func TestParseConcatPrecedence(t *testing.T) {
	// $a . "/" . $b is left-associative: (($a . "/") . $b).
	e := exprOf(t, `<?php $x = $a . "/" . $b;`)
	a := e.(*phpast.Assign)
	outer, ok := a.Value.(*phpast.Binary)
	if !ok || outer.Op != "." {
		t.Fatalf("value = %+v", a.Value)
	}
	inner, ok := outer.L.(*phpast.Binary)
	if !ok || inner.Op != "." {
		t.Errorf("left = %+v", outer.L)
	}
	if v, ok := outer.R.(*phpast.Var); !ok || v.Name != "b" {
		t.Errorf("right = %+v", outer.R)
	}
}

func TestParseComparisonVsBoolean(t *testing.T) {
	// $a > 5 && $b < 3 → (&& (> $a 5) (< $b 3))
	e := exprOf(t, "<?php $x = $a > 5 && $b < 3;")
	a := e.(*phpast.Assign)
	b := a.Value.(*phpast.Binary)
	if b.Op != "&&" {
		t.Fatalf("op = %s", b.Op)
	}
	if l := b.L.(*phpast.Binary); l.Op != ">" {
		t.Errorf("left op = %s", l.Op)
	}
	if r := b.R.(*phpast.Binary); r.Op != "<" {
		t.Errorf("right op = %s", r.Op)
	}
}

func TestParsePowRightAssoc(t *testing.T) {
	e := exprOf(t, "<?php $x = 2 ** 3 ** 2;")
	a := e.(*phpast.Assign)
	b := a.Value.(*phpast.Binary)
	if b.Op != "**" {
		t.Fatalf("op = %s", b.Op)
	}
	if _, ok := b.L.(*phpast.IntLit); !ok {
		t.Errorf("left should be literal, got %T", b.L)
	}
	if r, ok := b.R.(*phpast.Binary); !ok || r.Op != "**" {
		t.Errorf("right = %+v", b.R)
	}
}

func TestParseWordOpsLowest(t *testing.T) {
	// $x = 1 and $y = 2 → ($x = 1) and ($y = 2): and binds below assignment.
	e := exprOf(t, "<?php $x = 1 and $y = 2;")
	b, ok := e.(*phpast.Binary)
	if !ok || b.Op != "&&" {
		t.Fatalf("got %T %+v", e, e)
	}
	if _, ok := b.L.(*phpast.Assign); !ok {
		t.Errorf("left = %T", b.L)
	}
	if _, ok := b.R.(*phpast.Assign); !ok {
		t.Errorf("right = %T", b.R)
	}
}

func TestParseArrayAccess(t *testing.T) {
	e := exprOf(t, `<?php $myfile = $_FILES['upload_file'];`)
	a := e.(*phpast.Assign)
	dim, ok := a.Value.(*phpast.ArrayDim)
	if !ok {
		t.Fatalf("value = %T", a.Value)
	}
	if v, ok := dim.Arr.(*phpast.Var); !ok || v.Name != "_FILES" {
		t.Errorf("arr = %+v", dim.Arr)
	}
	if s, ok := dim.Index.(*phpast.StringLit); !ok || s.Value != "upload_file" {
		t.Errorf("index = %+v", dim.Index)
	}
}

func TestParseNestedArrayAccess(t *testing.T) {
	e := exprOf(t, `<?php $x = $_FILES[$file]['tmp_name'];`)
	a := e.(*phpast.Assign)
	outer := a.Value.(*phpast.ArrayDim)
	inner, ok := outer.Arr.(*phpast.ArrayDim)
	if !ok {
		t.Fatalf("outer.Arr = %T", outer.Arr)
	}
	if v, ok := inner.Index.(*phpast.Var); !ok || v.Name != "file" {
		t.Errorf("inner index = %+v", inner.Index)
	}
}

func TestParseArrayPush(t *testing.T) {
	e := exprOf(t, "<?php $a[] = 1;")
	a := e.(*phpast.Assign)
	dim := a.Target.(*phpast.ArrayDim)
	if dim.Index != nil {
		t.Errorf("push index = %+v, want nil", dim.Index)
	}
}

func TestParseFunctionCall(t *testing.T) {
	e := exprOf(t, `<?php move_uploaded_file($src, $dst);`)
	c, ok := e.(*phpast.Call)
	if !ok {
		t.Fatalf("got %T", e)
	}
	name, ok := phpast.CalleeName(c)
	if !ok || name != "move_uploaded_file" {
		t.Errorf("callee = %q", name)
	}
	if len(c.Args) != 2 {
		t.Errorf("args = %d", len(c.Args))
	}
}

func TestParseCalleeNameCaseInsensitive(t *testing.T) {
	e := exprOf(t, `<?php Move_Uploaded_File($a, $b);`)
	c := e.(*phpast.Call)
	name, _ := phpast.CalleeName(c)
	if name != "move_uploaded_file" {
		t.Errorf("callee = %q", name)
	}
}

func TestParseNestedCall(t *testing.T) {
	e := exprOf(t, `<?php handle_uploader("f", getFileName("f"));`)
	c := e.(*phpast.Call)
	if len(c.Args) != 2 {
		t.Fatalf("args = %d", len(c.Args))
	}
	if _, ok := c.Args[1].(*phpast.Call); !ok {
		t.Errorf("arg[1] = %T", c.Args[1])
	}
}

func TestParseIfElse(t *testing.T) {
	src := `<?php
if ($a > 10) { $b = 1; } else { $b = 2; }`
	s := firstStmt(t, src)
	iff, ok := s.(*phpast.If)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if iff.Else == nil {
		t.Error("missing else")
	}
	if len(iff.Then.Stmts) != 1 {
		t.Errorf("then has %d stmts", len(iff.Then.Stmts))
	}
}

func TestParseElseifChain(t *testing.T) {
	src := `<?php
if ($a) { $x = 1; }
elseif ($b) { $x = 2; }
else if ($c) { $x = 3; }
else { $x = 4; }`
	s := firstStmt(t, src)
	iff := s.(*phpast.If)
	second, ok := iff.Else.(*phpast.If)
	if !ok {
		t.Fatalf("else = %T", iff.Else)
	}
	third, ok := second.Else.(*phpast.If)
	if !ok {
		t.Fatalf("second else = %T", second.Else)
	}
	if third.Else == nil {
		t.Error("final else missing")
	}
}

func TestParseAlternativeSyntax(t *testing.T) {
	src := `<?php if ($a): $x = 1; elseif ($b): $x = 2; else: $x = 3; endif;`
	s := firstStmt(t, src)
	iff := s.(*phpast.If)
	if len(iff.Then.Stmts) != 1 {
		t.Errorf("then stmts = %d", len(iff.Then.Stmts))
	}
	nested, ok := iff.Else.(*phpast.If)
	if !ok {
		t.Fatalf("else = %T", iff.Else)
	}
	if nested.Else == nil {
		t.Error("nested else missing")
	}
}

func TestParseWhileForForeach(t *testing.T) {
	src := `<?php
while ($i < 10) { $i++; }
for ($i = 0; $i < 5; $i++) { echo $i; }
foreach ($arr as $k => $v) { echo $v; }
foreach ($arr as $v) { echo $v; }
do { $i--; } while ($i > 0);`
	f := mustParse(t, src)
	if len(f.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*phpast.While); !ok {
		t.Errorf("0: %T", f.Stmts[0])
	}
	if _, ok := f.Stmts[1].(*phpast.For); !ok {
		t.Errorf("1: %T", f.Stmts[1])
	}
	fe, ok := f.Stmts[2].(*phpast.Foreach)
	if !ok || fe.Key == nil {
		t.Errorf("2: %T key=%v", f.Stmts[2], fe.Key)
	}
	fe2 := f.Stmts[3].(*phpast.Foreach)
	if fe2.Key != nil {
		t.Error("3: unexpected key")
	}
	if _, ok := f.Stmts[4].(*phpast.DoWhile); !ok {
		t.Errorf("4: %T", f.Stmts[4])
	}
}

func TestParseSwitch(t *testing.T) {
	src := `<?php
switch ($x) {
	case 1:
	case 2:
		echo "low"; break;
	default:
		echo "high";
}`
	s := firstStmt(t, src)
	sw := s.(*phpast.Switch)
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if sw.Cases[2].Cond != nil {
		t.Error("default should have nil cond")
	}
}

func TestParseFuncDecl(t *testing.T) {
	src := `<?php
function handle_uploader($file, $savePath) {
	return true;
}`
	s := firstStmt(t, src)
	fd, ok := s.(*phpast.FuncDecl)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if fd.Name != "handle_uploader" || len(fd.Params) != 2 {
		t.Errorf("decl = %+v", fd)
	}
	if fd.Params[0].Name != "file" || fd.Params[1].Name != "savePath" {
		t.Errorf("params = %+v", fd.Params)
	}
	if fd.EndLine != 4 {
		t.Errorf("EndLine = %d, want 4", fd.EndLine)
	}
}

func TestParseFuncDefaultsAndHints(t *testing.T) {
	src := `<?php function f(array $a, string $b = "x", &$c, ?int $d = null) {}`
	fd := firstStmt(t, src).(*phpast.FuncDecl)
	if len(fd.Params) != 4 {
		t.Fatalf("params = %d", len(fd.Params))
	}
	if fd.Params[0].Type != "array" {
		t.Errorf("p0 type = %q", fd.Params[0].Type)
	}
	if fd.Params[1].Default == nil {
		t.Error("p1 default missing")
	}
	if !fd.Params[2].ByRef {
		t.Error("p2 should be by-ref")
	}
	if fd.Params[3].Default == nil {
		t.Error("p3 default missing")
	}
}

func TestParseClass(t *testing.T) {
	src := `<?php
class Uploader extends Base implements A, B {
	const MAX = 10;
	public $dir = "/tmp";
	private static $count;
	public function upload($f) { return $f; }
	protected static function helper() {}
}`
	s := firstStmt(t, src)
	cd, ok := s.(*phpast.ClassDecl)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if cd.Name != "Uploader" || cd.Parent != "Base" {
		t.Errorf("class = %+v", cd)
	}
	if len(cd.Methods) != 2 {
		t.Errorf("methods = %d", len(cd.Methods))
	}
	if len(cd.Props) != 2 {
		t.Errorf("props = %d", len(cd.Props))
	}
	if _, ok := cd.Consts["MAX"]; !ok {
		t.Error("missing const MAX")
	}
	if cd.Methods[1].Static != true {
		t.Error("helper should be static")
	}
}

func TestParseMethodCallChain(t *testing.T) {
	e := exprOf(t, `<?php $wpdb->prepare("q")->execute();`)
	mc, ok := e.(*phpast.MethodCall)
	if !ok || mc.Method != "execute" {
		t.Fatalf("got %+v", e)
	}
	inner, ok := mc.Obj.(*phpast.MethodCall)
	if !ok || inner.Method != "prepare" {
		t.Errorf("obj = %+v", mc.Obj)
	}
}

func TestParseStaticAndConsts(t *testing.T) {
	e := exprOf(t, `<?php $x = Foo::bar($a) + Foo::BAZ;`)
	a := e.(*phpast.Assign)
	b := a.Value.(*phpast.Binary)
	if sc, ok := b.L.(*phpast.StaticCall); !ok || sc.Class != "Foo" || sc.Method != "bar" {
		t.Errorf("left = %+v", b.L)
	}
	if cc, ok := b.R.(*phpast.ClassConstFetch); !ok || cc.Const != "BAZ" {
		t.Errorf("right = %+v", b.R)
	}
}

func TestParseConstFetch(t *testing.T) {
	e := exprOf(t, `<?php $ext = pathinfo($name, PATHINFO_EXTENSION);`)
	a := e.(*phpast.Assign)
	c := a.Value.(*phpast.Call)
	if cf, ok := c.Args[1].(*phpast.ConstFetch); !ok || cf.Name != "PATHINFO_EXTENSION" {
		t.Errorf("arg1 = %+v", c.Args[1])
	}
}

func TestParseTernary(t *testing.T) {
	e := exprOf(t, "<?php $x = $a ? 1 : 2;")
	a := e.(*phpast.Assign)
	tn, ok := a.Value.(*phpast.Ternary)
	if !ok || tn.Then == nil {
		t.Fatalf("value = %+v", a.Value)
	}
	// Short form.
	e2 := exprOf(t, "<?php $x = $a ?: 2;")
	tn2 := e2.(*phpast.Assign).Value.(*phpast.Ternary)
	if tn2.Then != nil {
		t.Error("short ternary should have nil Then")
	}
}

func TestParseInterpolatedString(t *testing.T) {
	e := exprOf(t, `<?php $p = "$dir/$name.php";`)
	a := e.(*phpast.Assign)
	is, ok := a.Value.(*phpast.InterpString)
	if !ok {
		t.Fatalf("value = %T", a.Value)
	}
	// $dir, "/", $name, ".php"
	if len(is.Parts) != 4 {
		t.Fatalf("parts = %d: %+v", len(is.Parts), is.Parts)
	}
	if v, ok := is.Parts[0].(*phpast.Var); !ok || v.Name != "dir" {
		t.Errorf("part0 = %+v", is.Parts[0])
	}
	if s, ok := is.Parts[3].(*phpast.StringLit); !ok || s.Value != ".php" {
		t.Errorf("part3 = %+v", is.Parts[3])
	}
}

func TestParseComplexInterp(t *testing.T) {
	e := exprOf(t, `<?php $p = "x{$f['name']}y";`)
	a := e.(*phpast.Assign)
	is := a.Value.(*phpast.InterpString)
	if len(is.Parts) != 3 {
		t.Fatalf("parts = %d", len(is.Parts))
	}
	dim, ok := is.Parts[1].(*phpast.ArrayDim)
	if !ok {
		t.Fatalf("part1 = %T", is.Parts[1])
	}
	if s, ok := dim.Index.(*phpast.StringLit); !ok || s.Value != "name" {
		t.Errorf("index = %+v", dim.Index)
	}
}

func TestParseCasts(t *testing.T) {
	e := exprOf(t, "<?php $x = (int)$y + (string)$z;")
	a := e.(*phpast.Assign)
	b := a.Value.(*phpast.Binary)
	if c, ok := b.L.(*phpast.Cast); !ok || c.Type != "int" {
		t.Errorf("left = %+v", b.L)
	}
	if c, ok := b.R.(*phpast.Cast); !ok || c.Type != "string" {
		t.Errorf("right = %+v", b.R)
	}
}

func TestParseErrorSuppressAndNot(t *testing.T) {
	e := exprOf(t, "<?php $ok = !@move_uploaded_file($a, $b);")
	a := e.(*phpast.Assign)
	n, ok := a.Value.(*phpast.Unary)
	if !ok || n.Op != "!" {
		t.Fatalf("value = %+v", a.Value)
	}
	if _, ok := n.X.(*phpast.ErrorSuppress); !ok {
		t.Errorf("inner = %T", n.X)
	}
}

func TestParseIncludeRequire(t *testing.T) {
	src := `<?php
include 'a.php';
require_once("lib/b.php");`
	f := mustParse(t, src)
	i0 := f.Stmts[0].(*phpast.ExprStmt).X.(*phpast.Include)
	if i0.Kind != "include" {
		t.Errorf("kind = %s", i0.Kind)
	}
	i1 := f.Stmts[1].(*phpast.ExprStmt).X.(*phpast.Include)
	if i1.Kind != "require_once" {
		t.Errorf("kind = %s", i1.Kind)
	}
	if s, ok := i1.X.(*phpast.StringLit); !ok || s.Value != "lib/b.php" {
		t.Errorf("path = %+v", i1.X)
	}
}

func TestParseIssetEmptyUnset(t *testing.T) {
	src := `<?php
if (isset($_FILES['f'], $_POST['x']) && !empty($_FILES['f']['name'])) {
	unset($_FILES['f']);
}`
	f := mustParse(t, src)
	iff := f.Stmts[0].(*phpast.If)
	b := iff.Cond.(*phpast.Binary)
	is, ok := b.L.(*phpast.Isset)
	if !ok || len(is.Vars) != 2 {
		t.Errorf("left = %+v", b.L)
	}
	if _, ok := iff.Then.Stmts[0].(*phpast.Unset); !ok {
		t.Errorf("then = %T", iff.Then.Stmts[0])
	}
}

func TestParseArrayLiterals(t *testing.T) {
	e := exprOf(t, `<?php $a = array('jpg', 'png', 'k' => 'v');`)
	lit := e.(*phpast.Assign).Value.(*phpast.ArrayLit)
	if len(lit.Items) != 3 {
		t.Fatalf("items = %d", len(lit.Items))
	}
	if lit.Items[2].Key == nil {
		t.Error("item2 should have key")
	}
	e2 := exprOf(t, `<?php $a = ['x', 'y'];`)
	lit2 := e2.(*phpast.Assign).Value.(*phpast.ArrayLit)
	if len(lit2.Items) != 2 {
		t.Errorf("short items = %d", len(lit2.Items))
	}
}

func TestParseClosure(t *testing.T) {
	e := exprOf(t, `<?php $f = function($x) use (&$y) { return $x + $y; };`)
	cl, ok := e.(*phpast.Assign).Value.(*phpast.Closure)
	if !ok {
		t.Fatalf("value = %T", e.(*phpast.Assign).Value)
	}
	if len(cl.Params) != 1 || len(cl.Uses) != 1 || !cl.Uses[0].ByRef {
		t.Errorf("closure = %+v", cl)
	}
}

func TestParseEchoMulti(t *testing.T) {
	s := firstStmt(t, `<?php echo "a", $b, 1;`)
	ec := s.(*phpast.Echo)
	if len(ec.Args) != 3 {
		t.Errorf("args = %d", len(ec.Args))
	}
}

func TestParseGlobalStatement(t *testing.T) {
	s := firstStmt(t, `<?php global $wpdb, $wp_query;`)
	g := s.(*phpast.Global)
	if len(g.Names) != 2 || g.Names[0] != "wpdb" {
		t.Errorf("global = %+v", g)
	}
}

func TestParseExitDie(t *testing.T) {
	e := exprOf(t, `<?php die("nope");`)
	ex, ok := e.(*phpast.Exit)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if s, ok := ex.X.(*phpast.StringLit); !ok || s.Value != "nope" {
		t.Errorf("arg = %+v", ex.X)
	}
}

func TestParseNewObject(t *testing.T) {
	e := exprOf(t, `<?php $o = new WP_Error('code', "msg");`)
	n := e.(*phpast.Assign).Value.(*phpast.New)
	if n.Class != "WP_Error" || len(n.Args) != 2 {
		t.Errorf("new = %+v", n)
	}
}

func TestParseVariableFunction(t *testing.T) {
	e := exprOf(t, `<?php $func($a);`)
	c, ok := e.(*phpast.Call)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := c.Func.(*phpast.Var); !ok {
		t.Errorf("callee = %T", c.Func)
	}
}

func TestParseListAssign(t *testing.T) {
	e := exprOf(t, `<?php list($a, $b) = explode(".", $name);`)
	a := e.(*phpast.Assign)
	if _, ok := a.Target.(*phpast.ListExpr); !ok {
		t.Errorf("target = %T", a.Target)
	}
}

func TestParseTryCatch(t *testing.T) {
	src := `<?php
try { risky(); } catch (FooException | BarException $e) { log_it($e); } finally { cleanup(); }`
	s := firstStmt(t, src)
	tr := s.(*phpast.Try)
	if len(tr.Catches) != 1 || len(tr.Catches[0].Types) != 2 || tr.Catches[0].Var != "e" {
		t.Errorf("catches = %+v", tr.Catches)
	}
	if tr.Finally == nil {
		t.Error("finally missing")
	}
}

func TestParseHTMLMixed(t *testing.T) {
	src := "<html><?php echo $x; ?><body><?php echo $y; ?></body></html>"
	f := mustParse(t, src)
	var htmls, echos int
	for _, s := range f.Stmts {
		switch s.(type) {
		case *phpast.InlineHTML:
			htmls++
		case *phpast.Echo:
			echos++
		}
	}
	if htmls != 3 || echos != 2 { // <html>, <body>, </body></html>
		t.Errorf("htmls = %d echos = %d", htmls, echos)
	}
}

func TestParsePositionsPreserved(t *testing.T) {
	src := "<?php\n$a = 1;\nif ($a) {\n\t$b = 2;\n}\n"
	f := mustParse(t, src)
	if got := f.Stmts[0].Pos().Line; got != 2 {
		t.Errorf("stmt0 line = %d, want 2", got)
	}
	iff := f.Stmts[1].(*phpast.If)
	if got := iff.Pos().Line; got != 3 {
		t.Errorf("if line = %d, want 3", got)
	}
	if got := iff.Then.Stmts[0].Pos().Line; got != 4 {
		t.Errorf("inner line = %d, want 4", got)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	src := "<?php $a = ; $b = 2;"
	f, errs := Parse("bad.php", src)
	if len(errs) == 0 {
		t.Error("expected parse errors")
	}
	// The second statement must survive.
	found := false
	phpast.Walk(f, func(n phpast.Node) bool {
		if v, ok := n.(*phpast.Var); ok && v.Name == "b" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("recovery lost $b = 2")
	}
}

// --- paper listings ---

// Listing 1 of the paper ("example1.php").
const listing1 = `<?php
function getFileName($file){
	return $_FILES[$file]['name'];
}

function handle_uploader($file, $savePath){
	$path_array = wp_upload_dir();
	$pathAndName = $path_array['path'] . "/" . $savePath;
	if (!move_uploaded_file($_FILES[$file]['tmp_name'], $pathAndName)) {
		return false;
	}
	return true;
}

if (!handle_uploader("upload_file", getFileName("upload_file"))) {
	echo "File_Uploaded_failure!";
}
`

func TestParseListing1(t *testing.T) {
	f := mustParse(t, listing1)
	var fns []string
	for _, s := range f.Stmts {
		if fd, ok := s.(*phpast.FuncDecl); ok {
			fns = append(fns, fd.Name)
		}
	}
	if len(fns) != 2 || fns[0] != "getFileName" || fns[1] != "handle_uploader" {
		t.Errorf("functions = %v", fns)
	}
	// The trailing if must reference both functions.
	last := f.Stmts[len(f.Stmts)-1].(*phpast.If)
	var calls []string
	phpast.Walk(last.Cond, func(n phpast.Node) bool {
		if c, ok := n.(*phpast.Call); ok {
			if name, ok := phpast.CalleeName(c); ok {
				calls = append(calls, name)
			}
		}
		return true
	})
	if len(calls) != 2 {
		t.Errorf("calls in cond = %v", calls)
	}
}

// Listing 2 of the paper (two-path example).
const listing2 = `<?php
$a = 55;
$a = $a + $b;
if ($a > 10) {
	$a = 22 - $b;
} else {
	$a = 88;
}
`

func TestParseListing2(t *testing.T) {
	f := mustParse(t, listing2)
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	iff := f.Stmts[2].(*phpast.If)
	cond := iff.Cond.(*phpast.Binary)
	if cond.Op != ">" {
		t.Errorf("cond op = %s", cond.Op)
	}
}

// Listing 4 of the paper (vulnerable upload).
const listing4 = `<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['tmp_name'];
if (!move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName)) {
	return false;
}
return true;
`

func TestParseListing4(t *testing.T) {
	f := mustParse(t, listing4)
	if len(f.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

// Listing 8 of the paper (WP Demo Buddy).
const listing8 = `<?php
function file_Upload($type)
{
	global $wpdb;
	$upload_dir = get_option('wp_demo_buddy_upload_dir');
	$ext = pathinfo($_FILES[$type]['name'], PATHINFO_EXTENSION);
	if ($ext !== 'zip') return;
	$info = pathinfo($_FILES[$type]['name']);
	$newname = time() . rand() . '_' . $info['basename'] . '.php';
	$target = $upload_dir . $newname;
	move_uploaded_file($_FILES[$type]['tmp_name'], $target);
	$ret = array($newname, $info['basename']);
	return $ret;
}
`

func TestParseListing8(t *testing.T) {
	f := mustParse(t, listing8)
	fd := f.Stmts[0].(*phpast.FuncDecl)
	if fd.Name != "file_Upload" {
		t.Errorf("name = %s", fd.Name)
	}
	// The guard "if ($ext !== 'zip') return;" must parse as an If with a
	// single-return body.
	var guard *phpast.If
	phpast.Walk(fd, func(n phpast.Node) bool {
		if iff, ok := n.(*phpast.If); ok && guard == nil {
			guard = iff
		}
		return true
	})
	if guard == nil {
		t.Fatal("guard not found")
	}
	if b := guard.Cond.(*phpast.Binary); b.Op != "!==" {
		t.Errorf("guard op = %s", b.Op)
	}
}

// Property: the parser terminates and returns a non-nil file for arbitrary
// input without panicking.
func TestParseArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		file, _ := Parse("fuzz.php", "<?php "+s)
		return file != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every statement's position line is within the line span of the
// source.
func TestParsePositionsInRange(t *testing.T) {
	srcs := []string{listing1, listing2, listing4, listing8}
	for _, src := range srcs {
		f := mustParse(t, src)
		maxLine := strings.Count(src, "\n") + 1
		phpast.Walk(f, func(n phpast.Node) bool {
			if p := n.Pos(); p.IsValid() && (p.Line < 1 || p.Line > maxLine) {
				t.Errorf("node %T at line %d outside [1,%d]", n, p.Line, maxLine)
			}
			return true
		})
	}
}

func TestDumpDoesNotPanic(t *testing.T) {
	for _, src := range []string{listing1, listing2, listing4, listing8} {
		f := mustParse(t, src)
		if out := phpast.Dump(f); out == "" {
			t.Error("empty dump")
		}
	}
}
