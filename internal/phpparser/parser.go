// Package phpparser implements a recursive-descent parser producing
// phpast trees from PHP source.
//
// The accepted dialect covers the core syntax of Table I of the UChecker
// paper plus everything the paper's listings and the evaluation corpus use:
// functions, conditionals (including elseif chains and the alternative
// colon syntax), loops, switch, echo/print, include/require, classes with
// methods, closures, array literals in both spellings, string
// interpolation, isset/empty/unset, casts, and error suppression.
//
// Parsing is tolerant: syntax errors are recorded and the parser
// resynchronizes at the next statement boundary, so one malformed construct
// does not hide an entire plugin from analysis.
package phpparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phptoken"
)

// Parser parses one PHP file.
type Parser struct {
	file string
	toks []phptoken.Token
	pos  int
	errs []error
}

// Parse parses src as the contents of the named file. It always returns a
// (possibly partial) File; errors describe any malformed regions that were
// skipped.
func Parse(file, src string) (*phpast.File, []error) {
	lex := phplex.New(file, src)
	toks := lex.Tokens()
	p := &Parser{file: file, toks: toks}
	p.errs = append(p.errs, lex.Errors()...)
	f := &phpast.File{Name: file}
	for !p.at(phptoken.EOF) {
		s := p.parseTopLevel()
		if s != nil {
			f.Stmts = append(f.Stmts, s)
		}
	}
	return f, p.errs
}

// ParseExpr parses a standalone PHP expression (no surrounding <?php tag),
// as used for the inner text of complex string interpolation.
func ParseExpr(file, src string) (phpast.Expr, []error) {
	lex := phplex.New(file, "<?php "+src)
	toks := lex.Tokens()
	p := &Parser{file: file, toks: toks}
	p.errs = append(p.errs, lex.Errors()...)
	if p.at(phptoken.OpenTag) {
		p.next()
	}
	e := p.parseExpr()
	return e, p.errs
}

// --- token plumbing ---

func (p *Parser) cur() phptoken.Token { return p.toks[p.pos] }

func (p *Parser) at(k phptoken.Kind) bool { return p.cur().Kind == k }

func (p *Parser) atAny(ks ...phptoken.Kind) bool {
	for _, k := range ks {
		if p.cur().Kind == k {
			return true
		}
	}
	return false
}

func (p *Parser) peek(n int) phptoken.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() phptoken.Token {
	t := p.cur()
	if t.Kind != phptoken.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k phptoken.Kind) phptoken.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %v, found %v", k, p.cur().Kind)
	return phptoken.Token{Kind: k, Pos: p.cur().Pos}
}

// accept consumes and returns true if the current token has kind k.
func (p *Parser) accept(k phptoken.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s:%s: %s", p.file, p.cur().Pos, fmt.Sprintf(format, args...)))
}

// atIdent reports whether the current token is an identifier with the given
// lower-case spelling (PHP identifiers in statement positions like "endif"
// are context keywords).
func (p *Parser) atIdent(lower string) bool {
	return p.at(phptoken.Ident) && strings.EqualFold(p.cur().Value, lower)
}

// sync skips tokens until a statement boundary to recover from errors.
func (p *Parser) sync() {
	for !p.at(phptoken.EOF) {
		k := p.cur().Kind
		if k == phptoken.Semicolon || k == phptoken.RBrace || k == phptoken.CloseTag {
			p.next()
			return
		}
		p.next()
	}
}

// --- statements ---

func (p *Parser) parseTopLevel() phpast.Stmt {
	switch p.cur().Kind {
	case phptoken.InlineHTML:
		t := p.next()
		return &phpast.InlineHTML{P: t.Pos, Text: t.Value}
	case phptoken.OpenTag:
		p.next()
		return nil
	case phptoken.OpenEcho:
		t := p.next()
		args := []phpast.Expr{p.parseExpr()}
		for p.accept(phptoken.Comma) {
			args = append(args, p.parseExpr())
		}
		p.accept(phptoken.Semicolon)
		return &phpast.Echo{P: t.Pos, Args: args}
	case phptoken.CloseTag:
		p.next()
		return nil
	default:
		return p.parseStmt()
	}
}

func (p *Parser) parseStmt() phpast.Stmt {
	startPos := p.pos
	defer func() {
		// Guarantee forward progress even on pathological inputs.
		if p.pos == startPos && !p.at(phptoken.EOF) {
			p.next()
		}
	}()

	switch p.cur().Kind {
	case phptoken.Semicolon:
		t := p.next()
		return &phpast.Nop{P: t.Pos}
	case phptoken.InlineHTML:
		t := p.next()
		return &phpast.InlineHTML{P: t.Pos, Text: t.Value}
	case phptoken.OpenTag, phptoken.CloseTag:
		p.next()
		return &phpast.Nop{P: p.cur().Pos}
	case phptoken.OpenEcho:
		t := p.next()
		args := []phpast.Expr{p.parseExpr()}
		p.accept(phptoken.Semicolon)
		return &phpast.Echo{P: t.Pos, Args: args}
	case phptoken.LBrace:
		return p.parseBlock()
	case phptoken.KwIf:
		return p.parseIf()
	case phptoken.KwWhile:
		return p.parseWhile()
	case phptoken.KwDo:
		return p.parseDoWhile()
	case phptoken.KwFor:
		return p.parseFor()
	case phptoken.KwForeach:
		return p.parseForeach()
	case phptoken.KwSwitch:
		return p.parseSwitch()
	case phptoken.KwBreak:
		t := p.next()
		lvl := 0
		if p.at(phptoken.IntLit) {
			lvl, _ = strconv.Atoi(p.next().Value)
		}
		p.stmtEnd()
		return &phpast.Break{P: t.Pos, Level: lvl}
	case phptoken.KwContinue:
		t := p.next()
		lvl := 0
		if p.at(phptoken.IntLit) {
			lvl, _ = strconv.Atoi(p.next().Value)
		}
		p.stmtEnd()
		return &phpast.Continue{P: t.Pos, Level: lvl}
	case phptoken.KwReturn:
		t := p.next()
		var x phpast.Expr
		if !p.atAny(phptoken.Semicolon, phptoken.CloseTag, phptoken.EOF) {
			x = p.parseExpr()
		}
		p.stmtEnd()
		return &phpast.Return{P: t.Pos, X: x}
	case phptoken.KwEcho:
		t := p.next()
		args := []phpast.Expr{p.parseExpr()}
		for p.accept(phptoken.Comma) {
			args = append(args, p.parseExpr())
		}
		p.stmtEnd()
		return &phpast.Echo{P: t.Pos, Args: args}
	case phptoken.KwGlobal:
		t := p.next()
		var names []string
		for {
			if p.at(phptoken.Variable) {
				names = append(names, p.next().Value)
			} else {
				p.errorf("expected variable in global declaration")
				break
			}
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.stmtEnd()
		return &phpast.Global{P: t.Pos, Names: names}
	case phptoken.KwStatic:
		// Could be "static $x = 1;" or "static::method()" expression.
		if p.peek(1).Kind == phptoken.Variable {
			return p.parseStaticVars()
		}
		return p.parseExprStmt()
	case phptoken.KwUnset:
		t := p.next()
		p.expect(phptoken.LParen)
		var vars []phpast.Expr
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			vars = append(vars, p.parseExpr())
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen)
		p.stmtEnd()
		return &phpast.Unset{P: t.Pos, Vars: vars}
	case phptoken.KwFunction:
		// Distinguish declaration from closure-expression statement.
		if p.peek(1).Kind == phptoken.Ident || (p.peek(1).Kind == phptoken.Amp && p.peek(2).Kind == phptoken.Ident) {
			return p.parseFuncDecl()
		}
		return p.parseExprStmt()
	case phptoken.KwClass, phptoken.KwInterface:
		return p.parseClassDecl(false)
	case phptoken.KwAbstract, phptoken.KwFinal:
		p.next()
		if p.at(phptoken.KwClass) {
			return p.parseClassDecl(true)
		}
		p.errorf("expected class after abstract/final")
		p.sync()
		return nil
	case phptoken.KwTry:
		return p.parseTry()
	case phptoken.KwThrow:
		t := p.next()
		x := p.parseExpr()
		p.stmtEnd()
		return &phpast.Throw{P: t.Pos, X: x}
	case phptoken.KwNamespace:
		// namespace Foo\Bar; — recorded as a Nop; names are flattened.
		t := p.next()
		for !p.atAny(phptoken.Semicolon, phptoken.LBrace, phptoken.EOF) {
			p.next()
		}
		if p.at(phptoken.LBrace) {
			// Braced namespace: parse contents as a block.
			return p.parseBlock()
		}
		p.accept(phptoken.Semicolon)
		return &phpast.Nop{P: t.Pos}
	case phptoken.KwUse:
		// use Foo\Bar (as Baz); — imports are irrelevant to the analysis.
		t := p.next()
		for !p.atAny(phptoken.Semicolon, phptoken.EOF, phptoken.CloseTag) {
			p.next()
		}
		p.accept(phptoken.Semicolon)
		return &phpast.Nop{P: t.Pos}
	case phptoken.KwConst:
		// const NAME = expr; — treat as assignment to a constant name.
		t := p.next()
		name := p.expect(phptoken.Ident).Value
		p.expect(phptoken.Assign)
		val := p.parseExpr()
		p.stmtEnd()
		return &phpast.ExprStmt{P: t.Pos, X: &phpast.Assign{
			P:      t.Pos,
			Target: &phpast.ConstFetch{P: t.Pos, Name: name},
			Value:  val,
		}}
	case phptoken.EOF:
		return nil
	default:
		return p.parseExprStmt()
	}
}

// stmtEnd consumes a statement terminator: ';' or a close tag (which ends
// the statement implicitly in PHP).
func (p *Parser) stmtEnd() {
	if p.accept(phptoken.Semicolon) {
		return
	}
	if p.at(phptoken.CloseTag) || p.at(phptoken.EOF) {
		return
	}
	p.errorf("expected ';', found %v", p.cur().Kind)
	p.sync()
}

func (p *Parser) parseExprStmt() phpast.Stmt {
	t := p.cur()
	x := p.parseExpr()
	p.stmtEnd()
	if x == nil {
		return nil
	}
	return &phpast.ExprStmt{P: t.Pos, X: x}
}

func (p *Parser) parseBlock() *phpast.Block {
	t := p.expect(phptoken.LBrace)
	b := &phpast.Block{P: t.Pos}
	for !p.at(phptoken.RBrace) && !p.at(phptoken.EOF) {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(phptoken.RBrace)
	return b
}

// parseBody parses either a braced block or a single statement, returning a
// Block either way.
func (p *Parser) parseBody() *phpast.Block {
	if p.at(phptoken.LBrace) {
		return p.parseBlock()
	}
	s := p.parseStmt()
	b := &phpast.Block{P: p.cur().Pos}
	if s != nil {
		b.P = s.Pos()
		b.Stmts = []phpast.Stmt{s}
	}
	return b
}

// parseAltBody parses statements until one of the given context-keyword
// identifiers (e.g. "endif") or keyword kinds appears, for the alternative
// colon syntax. The terminator is not consumed.
func (p *Parser) parseAltBody(endIdents ...string) *phpast.Block {
	b := &phpast.Block{P: p.cur().Pos}
	for !p.at(phptoken.EOF) {
		if p.at(phptoken.KwElse) || p.at(phptoken.KwElseif) {
			return b
		}
		for _, id := range endIdents {
			if p.atIdent(id) {
				return b
			}
		}
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b
}

func (p *Parser) parseIf() phpast.Stmt {
	t := p.expect(phptoken.KwIf)
	p.expect(phptoken.LParen)
	cond := p.parseExpr()
	p.expect(phptoken.RParen)

	if p.accept(phptoken.Colon) {
		// Alternative syntax: if (...): ... elseif: ... else: ... endif;
		then := p.parseAltBody("endif")
		node := &phpast.If{P: t.Pos, Cond: cond, Then: then}
		cur := node
		for {
			if p.at(phptoken.KwElseif) {
				et := p.next()
				p.expect(phptoken.LParen)
				econd := p.parseExpr()
				p.expect(phptoken.RParen)
				p.expect(phptoken.Colon)
				ebody := p.parseAltBody("endif")
				nested := &phpast.If{P: et.Pos, Cond: econd, Then: ebody}
				cur.Else = nested
				cur = nested
				continue
			}
			if p.at(phptoken.KwElse) {
				p.next()
				p.expect(phptoken.Colon)
				cur.Else = p.parseAltBody("endif")
				break
			}
			break
		}
		if p.atIdent("endif") {
			p.next()
		} else {
			p.errorf("expected endif")
		}
		p.stmtEnd()
		return node
	}

	then := p.parseBody()
	node := &phpast.If{P: t.Pos, Cond: cond, Then: then}
	if p.at(phptoken.KwElseif) {
		// Re-enter as a nested if: elseif (c) ... == else { if (c) ... }.
		p.toks[p.pos].Kind = phptoken.KwIf
		node.Else = p.parseIf()
		return node
	}
	if p.accept(phptoken.KwElse) {
		if p.at(phptoken.KwIf) {
			node.Else = p.parseIf()
		} else {
			node.Else = p.parseBody()
		}
	}
	return node
}

func (p *Parser) parseWhile() phpast.Stmt {
	t := p.expect(phptoken.KwWhile)
	p.expect(phptoken.LParen)
	cond := p.parseExpr()
	p.expect(phptoken.RParen)
	if p.accept(phptoken.Colon) {
		body := p.parseAltBody("endwhile")
		if p.atIdent("endwhile") {
			p.next()
		}
		p.stmtEnd()
		return &phpast.While{P: t.Pos, Cond: cond, Body: body}
	}
	return &phpast.While{P: t.Pos, Cond: cond, Body: p.parseBody()}
}

func (p *Parser) parseDoWhile() phpast.Stmt {
	t := p.expect(phptoken.KwDo)
	body := p.parseBody()
	p.expect(phptoken.KwWhile)
	p.expect(phptoken.LParen)
	cond := p.parseExpr()
	p.expect(phptoken.RParen)
	p.stmtEnd()
	return &phpast.DoWhile{P: t.Pos, Body: body, Cond: cond}
}

func (p *Parser) parseFor() phpast.Stmt {
	t := p.expect(phptoken.KwFor)
	p.expect(phptoken.LParen)
	var init, cond, post []phpast.Expr
	for !p.at(phptoken.Semicolon) && !p.at(phptoken.EOF) {
		init = append(init, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.Semicolon)
	for !p.at(phptoken.Semicolon) && !p.at(phptoken.EOF) {
		cond = append(cond, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.Semicolon)
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		post = append(post, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen)
	if p.accept(phptoken.Colon) {
		body := p.parseAltBody("endfor")
		if p.atIdent("endfor") {
			p.next()
		}
		p.stmtEnd()
		return &phpast.For{P: t.Pos, Init: init, Cond: cond, Post: post, Body: body}
	}
	return &phpast.For{P: t.Pos, Init: init, Cond: cond, Post: post, Body: p.parseBody()}
}

func (p *Parser) parseForeach() phpast.Stmt {
	t := p.expect(phptoken.KwForeach)
	p.expect(phptoken.LParen)
	arr := p.parseExpr()
	p.expect(phptoken.KwAs)
	byRef := p.accept(phptoken.Amp)
	first := p.parseExpr()
	node := &phpast.Foreach{P: t.Pos, Arr: arr, Val: first, ByRef: byRef}
	if p.accept(phptoken.DArrow) {
		node.Key = first
		node.ByRef = p.accept(phptoken.Amp)
		node.Val = p.parseExpr()
	}
	p.expect(phptoken.RParen)
	if p.accept(phptoken.Colon) {
		node.Body = p.parseAltBody("endforeach")
		if p.atIdent("endforeach") {
			p.next()
		}
		p.stmtEnd()
		return node
	}
	node.Body = p.parseBody()
	return node
}

func (p *Parser) parseSwitch() phpast.Stmt {
	t := p.expect(phptoken.KwSwitch)
	p.expect(phptoken.LParen)
	subj := p.parseExpr()
	p.expect(phptoken.RParen)
	node := &phpast.Switch{P: t.Pos, Subject: subj}
	alt := false
	if p.accept(phptoken.Colon) {
		alt = true
	} else {
		p.expect(phptoken.LBrace)
	}
	done := func() bool {
		if alt {
			return p.atIdent("endswitch") || p.at(phptoken.EOF)
		}
		return p.at(phptoken.RBrace) || p.at(phptoken.EOF)
	}
	for !done() {
		switch {
		case p.at(phptoken.KwCase):
			ct := p.next()
			cond := p.parseExpr()
			if !p.accept(phptoken.Colon) {
				p.accept(phptoken.Semicolon)
			}
			c := phpast.SwitchCase{P: ct.Pos, Cond: cond}
			for !p.at(phptoken.KwCase) && !p.at(phptoken.KwDefault) && !done() {
				s := p.parseStmt()
				if s != nil {
					c.Stmts = append(c.Stmts, s)
				}
			}
			node.Cases = append(node.Cases, c)
		case p.at(phptoken.KwDefault):
			dt := p.next()
			if !p.accept(phptoken.Colon) {
				p.accept(phptoken.Semicolon)
			}
			c := phpast.SwitchCase{P: dt.Pos}
			for !p.at(phptoken.KwCase) && !p.at(phptoken.KwDefault) && !done() {
				s := p.parseStmt()
				if s != nil {
					c.Stmts = append(c.Stmts, s)
				}
			}
			node.Cases = append(node.Cases, c)
		default:
			p.errorf("expected case or default in switch")
			p.sync()
		}
	}
	if alt {
		if p.atIdent("endswitch") {
			p.next()
		}
		p.stmtEnd()
	} else {
		p.expect(phptoken.RBrace)
	}
	return node
}

func (p *Parser) parseStaticVars() phpast.Stmt {
	t := p.expect(phptoken.KwStatic)
	node := &phpast.StaticVars{P: t.Pos}
	for {
		v := p.expect(phptoken.Variable)
		node.Names = append(node.Names, v.Value)
		var init phpast.Expr
		if p.accept(phptoken.Assign) {
			init = p.parseExpr()
		}
		node.Inits = append(node.Inits, init)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.stmtEnd()
	return node
}

func (p *Parser) parseParams() []phpast.Param {
	p.expect(phptoken.LParen)
	var params []phpast.Param
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		var prm phpast.Param
		prm.P = p.cur().Pos
		// Optional type hint: identifier, array, ?type, or namespaced name.
		p.accept(phptoken.Quest)
		if p.at(phptoken.Ident) || p.at(phptoken.KwArray) || p.at(phptoken.Bslash) {
			var tb strings.Builder
			for p.at(phptoken.Ident) || p.at(phptoken.KwArray) || p.at(phptoken.Bslash) {
				tk := p.next()
				if tk.Kind == phptoken.Bslash {
					tb.WriteByte('\\')
				} else if tk.Kind == phptoken.KwArray {
					tb.WriteString("array")
				} else {
					tb.WriteString(tk.Value)
				}
			}
			prm.Type = strings.ToLower(tb.String())
		}
		if p.accept(phptoken.Amp) {
			prm.ByRef = true
		}
		if p.at(phptoken.Concat) && p.peek(1).Kind == phptoken.Concat {
			// "..." lexes as Concat Concat Concat.
			p.next()
			p.next()
			p.accept(phptoken.Concat)
			prm.Variadic = true
		}
		v := p.expect(phptoken.Variable)
		prm.Name = v.Value
		if p.accept(phptoken.Assign) {
			prm.Default = p.parseExpr()
		}
		params = append(params, prm)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen)
	// Optional return type ": ?Foo".
	if p.accept(phptoken.Colon) {
		p.accept(phptoken.Quest)
		for p.at(phptoken.Ident) || p.at(phptoken.KwArray) || p.at(phptoken.Bslash) || p.at(phptoken.KwStatic) || p.at(phptoken.KwNull) {
			p.next()
		}
	}
	return params
}

func (p *Parser) parseFuncDecl() phpast.Stmt {
	t := p.expect(phptoken.KwFunction)
	p.accept(phptoken.Amp) // return-by-reference
	name := p.expect(phptoken.Ident).Value
	params := p.parseParams()
	body := p.parseBlock()
	end := 0
	if p.pos > 0 {
		end = p.toks[p.pos-1].Pos.Line
	}
	return &phpast.FuncDecl{P: t.Pos, Name: name, Params: params, Body: body.Stmts, EndLine: end}
}

func (p *Parser) parseClassDecl(modified bool) phpast.Stmt {
	isInterface := p.at(phptoken.KwInterface)
	t := p.next() // class or interface
	_ = modified
	name := p.expect(phptoken.Ident).Value
	node := &phpast.ClassDecl{P: t.Pos, Name: name, Consts: map[string]phpast.Expr{}, IsInterface: isInterface}
	if p.accept(phptoken.KwExtends) {
		node.Parent = p.parseQualifiedName()
	}
	if p.accept(phptoken.KwImplements) {
		for {
			node.Interfaces = append(node.Interfaces, p.parseQualifiedName())
			if !p.accept(phptoken.Comma) {
				break
			}
		}
	}
	p.expect(phptoken.LBrace)
	for !p.at(phptoken.RBrace) && !p.at(phptoken.EOF) {
		p.parseClassMember(node)
	}
	p.expect(phptoken.RBrace)
	if p.pos > 0 {
		node.EndLine = p.toks[p.pos-1].Pos.Line
	}
	return node
}

func (p *Parser) parseQualifiedName() string {
	var sb strings.Builder
	for p.at(phptoken.Bslash) {
		p.next()
	}
	sb.WriteString(p.expect(phptoken.Ident).Value)
	for p.at(phptoken.Bslash) {
		p.next()
		sb.WriteByte('\\')
		sb.WriteString(p.expect(phptoken.Ident).Value)
	}
	return sb.String()
}

func (p *Parser) parseClassMember(cls *phpast.ClassDecl) {
	visibility := ""
	static := false
	for {
		switch p.cur().Kind {
		case phptoken.KwPublic:
			visibility = "public"
			p.next()
			continue
		case phptoken.KwPrivate:
			visibility = "private"
			p.next()
			continue
		case phptoken.KwProtected:
			visibility = "protected"
			p.next()
			continue
		case phptoken.KwStatic:
			static = true
			p.next()
			continue
		case phptoken.KwAbstract, phptoken.KwFinal, phptoken.KwVar:
			p.next()
			continue
		}
		break
	}
	switch p.cur().Kind {
	case phptoken.KwFunction:
		t := p.next()
		p.accept(phptoken.Amp)
		name := p.cur().Value
		// Method names may collide with keywords (e.g. "list", "print").
		p.next()
		params := p.parseParams()
		m := &phpast.ClassMethod{P: t.Pos, Name: name, Params: params, Static: static, Visibility: visibility}
		if p.at(phptoken.LBrace) {
			m.Body = p.parseBlock().Stmts
		} else {
			p.stmtEnd() // abstract or interface method
		}
		if p.pos > 0 {
			m.EndLine = p.toks[p.pos-1].Pos.Line
		}
		cls.Methods = append(cls.Methods, m)
	case phptoken.KwConst:
		p.next()
		for {
			cname := p.expect(phptoken.Ident).Value
			p.expect(phptoken.Assign)
			cls.Consts[cname] = p.parseExpr()
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.stmtEnd()
	case phptoken.Variable:
		for {
			v := p.next()
			prop := &phpast.PropertyDecl{P: v.Pos, Name: v.Value, Static: static}
			if p.accept(phptoken.Assign) {
				prop.Default = p.parseExpr()
			}
			cls.Props = append(cls.Props, prop)
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.stmtEnd()
	default:
		// Possibly a typed property "string $x;" — skip type then retry once.
		if p.at(phptoken.Ident) || p.at(phptoken.Quest) || p.at(phptoken.KwArray) {
			p.next()
			if p.at(phptoken.Variable) {
				p.parseClassMember(cls)
				return
			}
		}
		p.errorf("unexpected token %v in class body", p.cur().Kind)
		p.sync()
	}
}

func (p *Parser) parseTry() phpast.Stmt {
	t := p.expect(phptoken.KwTry)
	node := &phpast.Try{P: t.Pos, Body: p.parseBlock()}
	for p.at(phptoken.KwCatch) {
		ct := p.next()
		p.expect(phptoken.LParen)
		c := phpast.Catch{P: ct.Pos}
		for {
			c.Types = append(c.Types, p.parseQualifiedName())
			if !p.accept(phptoken.Pipe) {
				break
			}
		}
		if p.at(phptoken.Variable) {
			c.Var = p.next().Value
		}
		p.expect(phptoken.RParen)
		c.Body = p.parseBlock()
		node.Catches = append(node.Catches, c)
	}
	if p.accept(phptoken.KwFinally) {
		node.Finally = p.parseBlock()
	}
	return node
}
