package phpparser

import (
	"strconv"
	"strings"

	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phptoken"
)

// Binary operator precedence, following the PHP operator table. Higher
// binds tighter. Coalesce is right-associative; pow is right-associative.
var binPrec = map[phptoken.Kind]int{
	phptoken.Pow:          13,
	phptoken.KwInstanceof: 12,
	phptoken.Mul:          11,
	phptoken.Div:          11,
	phptoken.Mod:          11,
	phptoken.Plus:         10,
	phptoken.Minus:        10,
	phptoken.Concat:       10,
	phptoken.Shl:          9,
	phptoken.Shr:          9,
	phptoken.Lt:           8,
	phptoken.Gt:           8,
	phptoken.LtEq:         8,
	phptoken.GtEq:         8,
	phptoken.Eq:           7,
	phptoken.NotEq:        7,
	phptoken.Identical:    7,
	phptoken.NotIdent:     7,
	phptoken.Spaceship:    7,
	phptoken.Amp:          6,
	phptoken.Caret:        5,
	phptoken.Pipe:         4,
	phptoken.BoolAnd:      3,
	phptoken.BoolOr:       2,
	phptoken.Coal:         1,
}

var rightAssoc = map[phptoken.Kind]bool{
	phptoken.Pow:  true,
	phptoken.Coal: true,
}

// opSpelling maps binary operator kinds to their PHP spellings as used by
// the AST.
var opSpelling = map[phptoken.Kind]string{
	phptoken.Pow: "**", phptoken.Mul: "*", phptoken.Div: "/", phptoken.Mod: "%",
	phptoken.Plus: "+", phptoken.Minus: "-", phptoken.Concat: ".",
	phptoken.Shl: "<<", phptoken.Shr: ">>",
	phptoken.Lt: "<", phptoken.Gt: ">", phptoken.LtEq: "<=", phptoken.GtEq: ">=",
	phptoken.Eq: "==", phptoken.NotEq: "!=", phptoken.Identical: "===",
	phptoken.NotIdent: "!==", phptoken.Spaceship: "<=>",
	phptoken.Amp: "&", phptoken.Caret: "^", phptoken.Pipe: "|",
	phptoken.BoolAnd: "&&", phptoken.BoolOr: "||", phptoken.Coal: "??",
	phptoken.KwInstanceof: "instanceof",
	phptoken.AndKw:        "&&", phptoken.OrKw: "||", phptoken.XorKw: "xor",
}

// parseExpr parses a full expression including the low-precedence and/or/xor
// word operators.
func (p *Parser) parseExpr() phpast.Expr {
	left := p.parseAssign()
	for p.atAny(phptoken.AndKw, phptoken.OrKw, phptoken.XorKw) {
		t := p.next()
		right := p.parseAssign()
		left = &phpast.Binary{P: t.Pos, Op: opSpelling[t.Kind], L: left, R: right}
	}
	return left
}

func (p *Parser) parseAssign() phpast.Expr {
	left := p.parseTernary()
	k := p.cur().Kind
	if !k.IsAssignOp() {
		return left
	}
	t := p.next()
	op := ""
	if base, ok := k.CompoundOp(); ok {
		op = opSpelling[base]
	}
	byRef := false
	if k == phptoken.Assign && p.accept(phptoken.Amp) {
		byRef = true
	}
	right := p.parseAssign() // right-associative
	return &phpast.Assign{P: t.Pos, Op: op, Target: left, Value: right, ByRef: byRef}
}

func (p *Parser) parseTernary() phpast.Expr {
	cond := p.parseBinary(0)
	if !p.at(phptoken.Quest) {
		return cond
	}
	t := p.next()
	var then phpast.Expr
	if !p.at(phptoken.Colon) {
		then = p.parseExpr()
	}
	p.expect(phptoken.Colon)
	els := p.parseTernary()
	return &phpast.Ternary{P: t.Pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseBinary(minPrec int) phpast.Expr {
	left := p.parseUnary()
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return left
		}
		t := p.next()
		next := prec + 1
		if rightAssoc[k] {
			next = prec
		}
		if k == phptoken.KwInstanceof {
			// Right operand is a class name or variable.
			var r phpast.Expr
			if p.at(phptoken.Variable) {
				v := p.next()
				r = &phpast.Var{P: v.Pos, Name: v.Value}
			} else {
				np := p.cur().Pos
				r = &phpast.Name{P: np, Value: p.parseQualifiedName()}
			}
			left = &phpast.Binary{P: t.Pos, Op: "instanceof", L: left, R: r}
			continue
		}
		right := p.parseBinary(next)
		left = &phpast.Binary{P: t.Pos, Op: opSpelling[k], L: left, R: right}
	}
}

// castTypes are the identifiers valid inside a cast "(int)$x".
var castTypes = map[string]string{
	"int": "int", "integer": "int",
	"bool": "bool", "boolean": "bool",
	"float": "float", "double": "float", "real": "float",
	"string": "string", "binary": "string",
	"array": "array", "object": "object", "unset": "unset",
}

func (p *Parser) parseUnary() phpast.Expr {
	t := p.cur()
	switch t.Kind {
	case phptoken.Not:
		p.next()
		return &phpast.Unary{P: t.Pos, Op: "!", X: p.parseUnary()}
	case phptoken.Minus:
		p.next()
		return &phpast.Unary{P: t.Pos, Op: "-", X: p.parseUnary()}
	case phptoken.Plus:
		p.next()
		return &phpast.Unary{P: t.Pos, Op: "+", X: p.parseUnary()}
	case phptoken.Tilde:
		p.next()
		return &phpast.Unary{P: t.Pos, Op: "~", X: p.parseUnary()}
	case phptoken.At:
		p.next()
		return &phpast.ErrorSuppress{P: t.Pos, X: p.parseUnary()}
	case phptoken.Inc:
		p.next()
		return &phpast.IncDec{P: t.Pos, Op: "++", Pre: true, X: p.parseUnary()}
	case phptoken.Dec:
		p.next()
		return &phpast.IncDec{P: t.Pos, Op: "--", Pre: true, X: p.parseUnary()}
	case phptoken.KwPrint:
		p.next()
		return &phpast.Print{P: t.Pos, X: p.parseExpr()}
	case phptoken.KwNew:
		p.next()
		cls := ""
		if p.at(phptoken.Ident) || p.at(phptoken.Bslash) {
			cls = p.parseQualifiedName()
		} else if p.at(phptoken.Variable) {
			cls = "$" + p.next().Value
		} else if p.at(phptoken.KwStatic) {
			p.next()
			cls = "static"
		} else if p.at(phptoken.KwClass) {
			// Anonymous class: new class(args) extends B { ... } — parse
			// and discard the declaration body.
			p.next()
			var args []phpast.Expr
			if p.at(phptoken.LParen) {
				args = p.parseArgs()
			}
			if p.accept(phptoken.KwExtends) {
				p.parseQualifiedName()
			}
			if p.accept(phptoken.KwImplements) {
				for {
					p.parseQualifiedName()
					if !p.accept(phptoken.Comma) {
						break
					}
				}
			}
			anon := &phpast.ClassDecl{P: t.Pos, Name: "class@anonymous", Consts: map[string]phpast.Expr{}}
			p.expect(phptoken.LBrace)
			for !p.at(phptoken.RBrace) && !p.at(phptoken.EOF) {
				p.parseClassMember(anon)
			}
			p.expect(phptoken.RBrace)
			return &phpast.New{P: t.Pos, Class: "class@anonymous", Args: args}
		}
		var args []phpast.Expr
		if p.at(phptoken.LParen) {
			args = p.parseArgs()
		}
		n := &phpast.New{P: t.Pos, Class: cls, Args: args}
		return p.parsePostfixOps(n)
	case phptoken.KwInclude, phptoken.KwIncludeOnce, phptoken.KwRequire, phptoken.KwRequireOnce:
		p.next()
		kind := map[phptoken.Kind]string{
			phptoken.KwInclude:     "include",
			phptoken.KwIncludeOnce: "include_once",
			phptoken.KwRequire:     "require",
			phptoken.KwRequireOnce: "require_once",
		}[t.Kind]
		return &phpast.Include{P: t.Pos, Kind: kind, X: p.parseExpr()}
	case phptoken.KwExit:
		p.next()
		var x phpast.Expr
		if p.accept(phptoken.LParen) {
			if !p.at(phptoken.RParen) {
				x = p.parseExpr()
			}
			p.expect(phptoken.RParen)
		}
		return &phpast.Exit{P: t.Pos, X: x}
	case phptoken.LParen:
		// Possibly a cast.
		if p.peek(1).Kind == phptoken.Ident || p.peek(1).Kind == phptoken.KwArray || p.peek(1).Kind == phptoken.KwUnset {
			name := strings.ToLower(p.peek(1).Value)
			if p.peek(1).Kind == phptoken.KwArray {
				name = "array"
			} else if p.peek(1).Kind == phptoken.KwUnset {
				name = "unset"
			}
			if ct, ok := castTypes[name]; ok && p.peek(2).Kind == phptoken.RParen {
				// Heuristic: "(int)x" is a cast; "(foo)" alone would be a
				// parenthesized constant, but castTypes only contains
				// reserved cast names, which cannot be constants in practice.
				p.next() // (
				p.next() // type
				p.next() // )
				return &phpast.Cast{P: t.Pos, Type: ct, X: p.parseUnary()}
			}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parseArgs() []phpast.Expr {
	p.expect(phptoken.LParen)
	var args []phpast.Expr
	for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
		p.accept(phptoken.Amp) // by-ref call-site (legacy)
		args = append(args, p.parseExpr())
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(phptoken.RParen)
	return args
}

func (p *Parser) parsePostfix() phpast.Expr {
	e := p.parsePrimary()
	e = p.parsePostfixOps(e)
	// A bare name that was never used as a callee or class reference is a
	// constant fetch (e.g. PATHINFO_EXTENSION, PHP_EOL).
	if n, ok := e.(*phpast.Name); ok {
		return &phpast.ConstFetch{P: n.P, Name: n.Value}
	}
	return e
}

func (p *Parser) parsePostfixOps(e phpast.Expr) phpast.Expr {
	for {
		t := p.cur()
		switch t.Kind {
		case phptoken.LBracket:
			p.next()
			var idx phpast.Expr
			if !p.at(phptoken.RBracket) {
				idx = p.parseExpr()
			}
			p.expect(phptoken.RBracket)
			e = &phpast.ArrayDim{P: t.Pos, Arr: e, Index: idx}
		case phptoken.LBrace:
			// Legacy curly string offset $s{0}: only when e is a var-ish
			// expression and next tokens look like an index. We keep it
			// conservative: only Var/ArrayDim receivers.
			switch e.(type) {
			case *phpast.Var, *phpast.ArrayDim, *phpast.PropFetch:
				p.next()
				idx := p.parseExpr()
				p.expect(phptoken.RBrace)
				e = &phpast.ArrayDim{P: t.Pos, Arr: e, Index: idx}
			default:
				return e
			}
		case phptoken.Arrow:
			p.next()
			var name string
			switch {
			case p.at(phptoken.Ident):
				name = p.next().Value
			case p.at(phptoken.Variable):
				// $obj->$dyn: dynamic property; keep the variable's name
				// prefixed to mark dynamism.
				name = "$" + p.next().Value
			default:
				// Method names can collide with keywords ("list", "print").
				name = p.next().Value
			}
			if p.at(phptoken.LParen) {
				args := p.parseArgs()
				e = &phpast.MethodCall{P: t.Pos, Obj: e, Method: name, Args: args}
			} else {
				e = &phpast.PropFetch{P: t.Pos, Obj: e, Prop: name}
			}
		case phptoken.Scope:
			cls := nameOf(e)
			p.next()
			switch {
			case p.at(phptoken.Variable):
				v := p.next()
				e = &phpast.StaticPropFetch{P: t.Pos, Class: cls, Prop: v.Value}
			case p.at(phptoken.KwClass):
				p.next()
				e = &phpast.ClassConstFetch{P: t.Pos, Class: cls, Const: "class"}
			default:
				name := p.next().Value
				if p.at(phptoken.LParen) {
					args := p.parseArgs()
					e = &phpast.StaticCall{P: t.Pos, Class: cls, Method: name, Args: args}
				} else {
					e = &phpast.ClassConstFetch{P: t.Pos, Class: cls, Const: name}
				}
			}
		case phptoken.LParen:
			// Call: callee may be a Name (function), Var (variable function),
			// or any callable expression.
			switch e.(type) {
			case *phpast.Name, *phpast.Var, *phpast.ArrayDim, *phpast.PropFetch, *phpast.Closure, *phpast.Call:
				args := p.parseArgs()
				e = &phpast.Call{P: t.Pos, Func: e, Args: args}
			default:
				return e
			}
		case phptoken.Inc:
			p.next()
			e = &phpast.IncDec{P: t.Pos, Op: "++", X: e}
		case phptoken.Dec:
			p.next()
			e = &phpast.IncDec{P: t.Pos, Op: "--", X: e}
		default:
			return e
		}
	}
}

// nameOf extracts a class name from an expression used before '::'.
func nameOf(e phpast.Expr) string {
	switch x := e.(type) {
	case *phpast.Name:
		return x.Value
	case *phpast.Var:
		return "$" + x.Name
	case *phpast.ConstFetch:
		return x.Name
	default:
		return "?"
	}
}

func (p *Parser) parsePrimary() phpast.Expr {
	t := p.cur()
	switch t.Kind {
	case phptoken.IntLit:
		p.next()
		v := parsePHPInt(t.Value)
		return &phpast.IntLit{P: t.Pos, Value: v}
	case phptoken.FloatLit:
		p.next()
		f, _ := strconv.ParseFloat(t.Value, 64)
		return &phpast.FloatLit{P: t.Pos, Value: f}
	case phptoken.StringLit:
		p.next()
		return &phpast.StringLit{P: t.Pos, Value: t.Value}
	case phptoken.StringInterp:
		p.next()
		return p.buildInterp(t)
	case phptoken.Variable:
		p.next()
		return &phpast.Var{P: t.Pos, Name: t.Value}
	case phptoken.KwTrue:
		p.next()
		return &phpast.BoolLit{P: t.Pos, Value: true}
	case phptoken.KwFalse:
		p.next()
		return &phpast.BoolLit{P: t.Pos, Value: false}
	case phptoken.KwNull:
		p.next()
		return &phpast.NullLit{P: t.Pos}
	case phptoken.KwArray:
		p.next()
		if p.at(phptoken.LParen) {
			return p.parseArrayLit(t.Pos, phptoken.RParen)
		}
		return &phpast.ConstFetch{P: t.Pos, Name: "array"}
	case phptoken.LBracket:
		p.next()
		return p.parseArrayItems(t.Pos, phptoken.RBracket)
	case phptoken.KwList:
		p.next()
		p.expect(phptoken.LParen)
		node := &phpast.ListExpr{P: t.Pos}
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			if p.at(phptoken.Comma) {
				node.Items = append(node.Items, nil)
			} else {
				node.Items = append(node.Items, p.parseExpr())
			}
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen)
		return node
	case phptoken.KwIsset:
		p.next()
		p.expect(phptoken.LParen)
		node := &phpast.Isset{P: t.Pos}
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			node.Vars = append(node.Vars, p.parseExpr())
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen)
		return node
	case phptoken.KwEmpty:
		p.next()
		p.expect(phptoken.LParen)
		x := p.parseExpr()
		p.expect(phptoken.RParen)
		return &phpast.Empty{P: t.Pos, X: x}
	case phptoken.KwFunction:
		return p.parseClosure()
	case phptoken.KwStatic:
		// static function() {...} (static closure) or static::...
		if p.peek(1).Kind == phptoken.KwFunction {
			p.next()
			return p.parseClosure()
		}
		p.next()
		return &phpast.Name{P: t.Pos, Value: "static"}
	case phptoken.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(phptoken.RParen)
		return e
	case phptoken.Ident, phptoken.Bslash:
		name := p.parseQualifiedName()
		return &phpast.Name{P: t.Pos, Value: name}
	case phptoken.KwClass:
		// ::class handled in postfix; bare "class" here is an error.
		p.next()
		return &phpast.Name{P: t.Pos, Value: "class"}
	case phptoken.Amp:
		// Stray & (by-ref in foreach/args handled elsewhere); treat as
		// transparent.
		p.next()
		return p.parseUnary()
	default:
		p.errorf("unexpected token %v in expression", t.Kind)
		// Do not consume statement terminators: leaving them in place lets
		// the statement parser resynchronize without losing the next
		// statement.
		switch t.Kind {
		case phptoken.Semicolon, phptoken.RBrace, phptoken.RParen,
			phptoken.RBracket, phptoken.CloseTag, phptoken.EOF:
		default:
			p.next()
		}
		return &phpast.NullLit{P: t.Pos}
	}
}

// parseArrayLit parses array( items ) after the "array" keyword, with the
// opening delimiter still pending.
func (p *Parser) parseArrayLit(pos phptoken.Pos, close phptoken.Kind) phpast.Expr {
	p.next() // consume opening ( — caller verified
	return p.parseArrayItems(pos, close)
}

// parseArrayItems parses the comma-separated item list up to close, which
// is consumed.
func (p *Parser) parseArrayItems(pos phptoken.Pos, close phptoken.Kind) phpast.Expr {
	node := &phpast.ArrayLit{P: pos}
	for !p.at(close) && !p.at(phptoken.EOF) {
		var item phpast.ArrayItem
		if p.accept(phptoken.Amp) {
			item.ByRef = true
		}
		first := p.parseExpr()
		if p.accept(phptoken.DArrow) {
			item.Key = first
			if p.accept(phptoken.Amp) {
				item.ByRef = true
			}
			item.Value = p.parseExpr()
		} else {
			item.Value = first
		}
		node.Items = append(node.Items, item)
		if !p.accept(phptoken.Comma) {
			break
		}
	}
	p.expect(close)
	return node
}

func (p *Parser) parseClosure() phpast.Expr {
	t := p.expect(phptoken.KwFunction)
	p.accept(phptoken.Amp)
	params := p.parseParams()
	node := &phpast.Closure{P: t.Pos, Params: params}
	if p.at(phptoken.KwUse) {
		p.next()
		p.expect(phptoken.LParen)
		for !p.at(phptoken.RParen) && !p.at(phptoken.EOF) {
			byRef := p.accept(phptoken.Amp)
			v := p.expect(phptoken.Variable)
			node.Uses = append(node.Uses, phpast.ClosureUse{Name: v.Value, ByRef: byRef})
			if !p.accept(phptoken.Comma) {
				break
			}
		}
		p.expect(phptoken.RParen)
	}
	node.Body = p.parseBlock().Stmts
	return node
}

// buildInterp converts a StringInterp token into an InterpString AST node
// by splitting the raw body and parsing complex segments.
func (p *Parser) buildInterp(t phptoken.Token) phpast.Expr {
	segs := phplex.SplitInterp(t.Value)
	node := &phpast.InterpString{P: t.Pos}
	for _, s := range segs {
		switch s.Kind {
		case phplex.SegText:
			node.Parts = append(node.Parts, &phpast.StringLit{P: t.Pos, Value: s.Text})
		case phplex.SegVar:
			node.Parts = append(node.Parts, &phpast.Var{P: t.Pos, Name: s.Name})
		case phplex.SegVarIndex:
			var idx phpast.Expr
			if iv, err := strconv.ParseInt(s.Index, 10, 64); err == nil {
				idx = &phpast.IntLit{P: t.Pos, Value: iv}
			} else if strings.HasPrefix(s.Index, "$") {
				idx = &phpast.Var{P: t.Pos, Name: s.Index[1:]}
			} else {
				idx = &phpast.StringLit{P: t.Pos, Value: s.Index}
			}
			node.Parts = append(node.Parts, &phpast.ArrayDim{
				P:     t.Pos,
				Arr:   &phpast.Var{P: t.Pos, Name: s.Name},
				Index: idx,
			})
		case phplex.SegVarProp:
			node.Parts = append(node.Parts, &phpast.PropFetch{
				P:    t.Pos,
				Obj:  &phpast.Var{P: t.Pos, Name: s.Name},
				Prop: s.Prop,
			})
		case phplex.SegExpr:
			inner, errs := ParseExpr(p.file, s.Text)
			p.errs = append(p.errs, errs...)
			if inner != nil {
				node.Parts = append(node.Parts, inner)
			}
		}
	}
	if len(node.Parts) == 1 {
		if lit, ok := node.Parts[0].(*phpast.StringLit); ok {
			return lit
		}
	}
	return node
}

// parsePHPInt parses PHP integer literal spellings (decimal, hex, octal,
// binary). Overflow saturates, mirroring PHP's float fallback coarsely.
func parsePHPInt(s string) int64 {
	base := 10
	digits := s
	switch {
	case strings.HasPrefix(s, "0x"), strings.HasPrefix(s, "0X"):
		base, digits = 16, s[2:]
	case strings.HasPrefix(s, "0b"), strings.HasPrefix(s, "0B"):
		base, digits = 2, s[2:]
	case len(s) > 1 && s[0] == '0':
		base, digits = 8, s[1:]
	}
	v, err := strconv.ParseInt(digits, base, 64)
	if err != nil {
		// Octal parse of something like "09" (PHP error); fall back to decimal.
		if v2, err2 := strconv.ParseInt(s, 10, 64); err2 == nil {
			return v2
		}
		return 0
	}
	return v
}
