package phpparser

import (
	"testing"

	"repro/internal/phpast"
)

// fuzzSeeds are hand-picked pathological inputs: unterminated constructs,
// deep nesting, interpolation edge cases, heredocs, mixed HTML, stray
// bytes. The checked-in corpus under testdata/fuzz/FuzzParse extends this
// set with inputs the fuzzer found interesting.
var fuzzSeeds = []string{
	"",
	"<?php",
	"<?php echo 1;",
	"no php at all",
	"<?php function f( {",
	`<?php $s = "never closed`,
	"<?php $s = 'never closed",
	"<?php /* unterminated comment",
	"<?php if ($a { }",
	"<?php class C { function m( } }",
	"<?php $a = array(1, 2, array(3, array(",
	"<?php foreach ($a as => ) {}",
	`<?php $x = "interp $a[b] ${c} {$d->e} tail";`,
	"<?php $h = <<<EOT\nnever terminated",
	"<?php $h = <<<'EOT'\nraw\nEOT;\n",
	"<?php ?> trailing html <?php echo 2;",
	"<?php $x = 1 + ;",
	"<?php move_uploaded_file($_FILES['f']['tmp_name'], \"/up/\" . $_FILES['f']['name']);",
	"<?php switch ($x) { case 1: default }",
	"<?php do { } while (",
	"<?php $$$$a = 1;",
	"<?php \x00\xff\xfe binary garbage \x80",
	"<?php list($a, , $b) = $c;",
	"<?php function f() { return function() use ($x) { return $x; }; }",
	"<?php @$a->b()->c[1]::d;",
	"<?php echo 0x1f + 0b11 + 077 + 1e309;",
}

// FuzzParse asserts the parser never panics on arbitrary input and always
// returns a non-nil AST (error recovery produces a partial file, never
// nil) — the invariant the scanner's parse stage relies on for fault
// containment.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, errs := Parse("fuzz.php", src)
		if file == nil {
			t.Fatalf("Parse returned nil AST (errs: %v)", errs)
		}
		for _, err := range errs {
			if err == nil {
				t.Fatal("nil error in parse error list")
			}
		}
		// The recovered AST must be walkable without panicking.
		n := 0
		phpast.Walk(file, func(phpast.Node) bool { n++; return true })
	})
}

// FuzzParseExpr asserts the expression entry point holds the same
// no-panic contract.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"", "1 + 2", `$a . "x$b"`, "f(g(", "$a ? : $b", "new C(1,", "(int)$x",
		"$_FILES['f']['name']", "$a[1][2][3]", "!~-+$x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ParseExpr("fuzz.php", src)
	})
}
