package phptoken

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		EOF:       "EOF",
		Variable:  "Variable",
		KwIf:      "if",
		Concat:    ".",
		Identical: "===",
		OpenTag:   "<?php",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"if":       KwIf,
		"function": KwFunction,
		"die":      KwExit,
		"exit":     KwExit,
		"and":      AndKw,
		"or":       OrKw,
		"xor":      XorKw,
		"banana":   Ident,
	}
	for in, want := range cases {
		if got := Lookup(in); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{Assign, PlusAssign, ConcatAssign, CoalAssign, ShrAssign} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assign op", k)
		}
	}
	for _, k := range []Kind{Plus, Eq, Arrow, KwIf} {
		if k.IsAssignOp() {
			t.Errorf("%v should not be an assign op", k)
		}
	}
}

func TestCompoundOp(t *testing.T) {
	cases := map[Kind]Kind{
		PlusAssign:   Plus,
		MinusAssign:  Minus,
		MulAssign:    Mul,
		DivAssign:    Div,
		ModAssign:    Mod,
		ConcatAssign: Concat,
		PowAssign:    Pow,
		CoalAssign:   Coal,
		AndAssign:    Amp,
		OrAssign:     Pipe,
		XorAssign:    Caret,
		ShlAssign:    Shl,
		ShrAssign:    Shr,
	}
	for in, want := range cases {
		got, ok := in.CompoundOp()
		if !ok || got != want {
			t.Errorf("CompoundOp(%v) = %v %v, want %v true", in, got, ok, want)
		}
	}
	if _, ok := Assign.CompoundOp(); ok {
		t.Error("plain = has no compound op")
	}
	if _, ok := Plus.CompoundOp(); ok {
		t.Error("+ has no compound op")
	}
}

func TestPos(t *testing.T) {
	p := Pos{Offset: 10, Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Errorf("pos = %v valid=%v", p, p.IsValid())
	}
	var zero Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Errorf("zero pos = %q valid=%v", zero.String(), zero.IsValid())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Variable, Value: "file", Pos: Pos{Line: 2, Col: 1}}
	if got := tok.String(); got != `Variable("file")@2:1` {
		t.Errorf("token string = %q", got)
	}
	semi := Token{Kind: Semicolon, Pos: Pos{Line: 1, Col: 9}}
	if got := semi.String(); got != ";@1:9" {
		t.Errorf("semi string = %q", got)
	}
}
