// Package phptoken defines the lexical tokens of the PHP dialect understood
// by this repository's parser, together with source positions.
//
// The token set covers the core syntax of Table I of the UChecker paper
// (constants, variables, unary/binary operations, array access, function
// definition and call, sequencing, assignment, conditionals, return) plus
// the surrounding constructs that real WordPress/Joomla/Drupal plugins use:
// loops, switch, echo, include/require, classes (lightly), string
// interpolation, and superglobals.
package phptoken

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The zero value is Invalid so that an uninitialized token is
// never mistaken for a meaningful one.
const (
	Invalid Kind = iota
	EOF
	InlineHTML // raw text outside <?php ... ?>
	OpenTag    // <?php
	OpenEcho   // <?=
	CloseTag   // ?>

	Ident        // function and class names, keywords are separate kinds
	Variable     // $name (value excludes the '$')
	IntLit       // 123, 0x1f, 0o17, 0b101
	FloatLit     // 1.5, 1e3
	StringLit    // single- or double-quoted string with no interpolation; value is decoded
	StringInterp // double-quoted or heredoc string containing interpolation; value is raw body

	// Punctuation and operators.
	Semicolon // ;
	Comma     // ,
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]

	Assign       // =
	PlusAssign   // +=
	MinusAssign  // -=
	MulAssign    // *=
	DivAssign    // /=
	ModAssign    // %=
	ConcatAssign // .=
	PowAssign    // **=
	CoalAssign   // ??=
	AndAssign    // &=
	OrAssign     // |=
	XorAssign    // ^=
	ShlAssign    // <<=
	ShrAssign    // >>=

	Plus   // +
	Minus  // -
	Mul    // *
	Div    // /
	Mod    // %
	Pow    // **
	Concat // .

	Inc // ++
	Dec // --

	Eq        // ==
	NotEq     // !=
	Identical // ===
	NotIdent  // !==
	Lt        // <
	Gt        // >
	LtEq      // <=
	GtEq      // >=
	Spaceship // <=>

	BoolAnd // &&
	BoolOr  // ||
	Not     // !
	AndKw   // and
	OrKw    // or
	XorKw   // xor

	Amp    // &
	Pipe   // |
	Caret  // ^
	Tilde  // ~
	Shl    // <<
	Shr    // >>
	Coal   // ??
	Quest  // ?
	Colon  // :
	Arrow  // ->
	DArrow // =>
	Scope  // ::
	At     // @
	Dollar // $ (rare: variable variables, not supported but lexed)
	Bslash // \

	// Keywords.
	KwFunction
	KwReturn
	KwIf
	KwElse
	KwElseif
	KwWhile
	KwDo
	KwFor
	KwForeach
	KwAs
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwEcho
	KwPrint
	KwGlobal
	KwStatic
	KwInclude
	KwIncludeOnce
	KwRequire
	KwRequireOnce
	KwTrue
	KwFalse
	KwNull
	KwArray
	KwList
	KwIsset
	KwEmpty
	KwUnset
	KwNew
	KwClass
	KwExtends
	KwImplements
	KwPublic
	KwPrivate
	KwProtected
	KwVar
	KwConst
	KwInstanceof
	KwTry
	KwCatch
	KwFinally
	KwThrow
	KwNamespace
	KwUse
	KwInterface
	KwAbstract
	KwFinal
	KwExit // exit / die

	kindCount // sentinel, keep last
)

var kindNames = map[Kind]string{
	Invalid:      "Invalid",
	EOF:          "EOF",
	InlineHTML:   "InlineHTML",
	OpenTag:      "<?php",
	OpenEcho:     "<?=",
	CloseTag:     "?>",
	Ident:        "Ident",
	Variable:     "Variable",
	IntLit:       "IntLit",
	FloatLit:     "FloatLit",
	StringLit:    "StringLit",
	StringInterp: "StringInterp",
	Semicolon:    ";",
	Comma:        ",",
	LParen:       "(",
	RParen:       ")",
	LBrace:       "{",
	RBrace:       "}",
	LBracket:     "[",
	RBracket:     "]",
	Assign:       "=",
	PlusAssign:   "+=",
	MinusAssign:  "-=",
	MulAssign:    "*=",
	DivAssign:    "/=",
	ModAssign:    "%=",
	ConcatAssign: ".=",
	PowAssign:    "**=",
	CoalAssign:   "??=",
	AndAssign:    "&=",
	OrAssign:     "|=",
	XorAssign:    "^=",
	ShlAssign:    "<<=",
	ShrAssign:    ">>=",
	Plus:         "+",
	Minus:        "-",
	Mul:          "*",
	Div:          "/",
	Mod:          "%",
	Pow:          "**",
	Concat:       ".",
	Inc:          "++",
	Dec:          "--",
	Eq:           "==",
	NotEq:        "!=",
	Identical:    "===",
	NotIdent:     "!==",
	Lt:           "<",
	Gt:           ">",
	LtEq:         "<=",
	GtEq:         ">=",
	Spaceship:    "<=>",
	BoolAnd:      "&&",
	BoolOr:       "||",
	Not:          "!",
	AndKw:        "and",
	OrKw:         "or",
	XorKw:        "xor",
	Amp:          "&",
	Pipe:         "|",
	Caret:        "^",
	Tilde:        "~",
	Shl:          "<<",
	Shr:          ">>",
	Coal:         "??",
	Quest:        "?",
	Colon:        ":",
	Arrow:        "->",
	DArrow:       "=>",
	Scope:        "::",
	At:           "@",
	Dollar:       "$",
	Bslash:       "\\",

	KwFunction:    "function",
	KwReturn:      "return",
	KwIf:          "if",
	KwElse:        "else",
	KwElseif:      "elseif",
	KwWhile:       "while",
	KwDo:          "do",
	KwFor:         "for",
	KwForeach:     "foreach",
	KwAs:          "as",
	KwSwitch:      "switch",
	KwCase:        "case",
	KwDefault:     "default",
	KwBreak:       "break",
	KwContinue:    "continue",
	KwEcho:        "echo",
	KwPrint:       "print",
	KwGlobal:      "global",
	KwStatic:      "static",
	KwInclude:     "include",
	KwIncludeOnce: "include_once",
	KwRequire:     "require",
	KwRequireOnce: "require_once",
	KwTrue:        "true",
	KwFalse:       "false",
	KwNull:        "null",
	KwArray:       "array",
	KwList:        "list",
	KwIsset:       "isset",
	KwEmpty:       "empty",
	KwUnset:       "unset",
	KwNew:         "new",
	KwClass:       "class",
	KwExtends:     "extends",
	KwImplements:  "implements",
	KwPublic:      "public",
	KwPrivate:     "private",
	KwProtected:   "protected",
	KwVar:         "var",
	KwConst:       "const",
	KwInstanceof:  "instanceof",
	KwTry:         "try",
	KwCatch:       "catch",
	KwFinally:     "finally",
	KwThrow:       "throw",
	KwNamespace:   "namespace",
	KwUse:         "use",
	KwInterface:   "interface",
	KwAbstract:    "abstract",
	KwFinal:       "final",
	KwExit:        "exit",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps lower-cased identifier text to keyword kinds. PHP keywords
// are case-insensitive.
var keywords = map[string]Kind{
	"function":     KwFunction,
	"return":       KwReturn,
	"if":           KwIf,
	"else":         KwElse,
	"elseif":       KwElseif,
	"while":        KwWhile,
	"do":           KwDo,
	"for":          KwFor,
	"foreach":      KwForeach,
	"as":           KwAs,
	"switch":       KwSwitch,
	"case":         KwCase,
	"default":      KwDefault,
	"break":        KwBreak,
	"continue":     KwContinue,
	"echo":         KwEcho,
	"print":        KwPrint,
	"global":       KwGlobal,
	"static":       KwStatic,
	"include":      KwInclude,
	"include_once": KwIncludeOnce,
	"require":      KwRequire,
	"require_once": KwRequireOnce,
	"true":         KwTrue,
	"false":        KwFalse,
	"null":         KwNull,
	"array":        KwArray,
	"list":         KwList,
	"isset":        KwIsset,
	"empty":        KwEmpty,
	"unset":        KwUnset,
	"new":          KwNew,
	"class":        KwClass,
	"extends":      KwExtends,
	"implements":   KwImplements,
	"public":       KwPublic,
	"private":      KwPrivate,
	"protected":    KwProtected,
	"var":          KwVar,
	"const":        KwConst,
	"instanceof":   KwInstanceof,
	"try":          KwTry,
	"catch":        KwCatch,
	"finally":      KwFinally,
	"throw":        KwThrow,
	"namespace":    KwNamespace,
	"use":          KwUse,
	"interface":    KwInterface,
	"abstract":     KwAbstract,
	"final":        KwFinal,
	"exit":         KwExit,
	"die":          KwExit,
	"and":          AndKw,
	"or":           OrKw,
	"xor":          XorKw,
}

// Lookup maps an identifier (already lower-cased by the caller) to its
// keyword kind, or returns Ident when the text is not a keyword.
func Lookup(lower string) Kind {
	if k, ok := keywords[lower]; ok {
		return k
	}
	return Ident
}

// Pos is a source position. Line and Col are 1-based; Offset is a 0-based
// byte offset into the file.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexical token: its kind, decoded value (for literals,
// identifiers and variables), and position of its first byte.
type Token struct {
	Kind  Kind
	Value string
	Pos   Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Variable, IntLit, FloatLit, StringLit, StringInterp, InlineHTML:
		return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Value, t.Pos)
	default:
		return fmt.Sprintf("%s@%s", t.Kind, t.Pos)
	}
}

// IsAssignOp reports whether k is any of PHP's compound or plain assignment
// operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, MulAssign, DivAssign, ModAssign,
		ConcatAssign, PowAssign, CoalAssign, AndAssign, OrAssign, XorAssign,
		ShlAssign, ShrAssign:
		return true
	}
	return false
}

// CompoundOp returns the underlying binary operator token for a compound
// assignment kind ("+=" -> "+"), and ok=false for plain "=" or non-assign
// kinds.
func (k Kind) CompoundOp() (Kind, bool) {
	switch k {
	case PlusAssign:
		return Plus, true
	case MinusAssign:
		return Minus, true
	case MulAssign:
		return Mul, true
	case DivAssign:
		return Div, true
	case ModAssign:
		return Mod, true
	case ConcatAssign:
		return Concat, true
	case PowAssign:
		return Pow, true
	case CoalAssign:
		return Coal, true
	case AndAssign:
		return Amp, true
	case OrAssign:
		return Pipe, true
	case XorAssign:
		return Caret, true
	case ShlAssign:
		return Shl, true
	case ShrAssign:
		return Shr, true
	}
	return Invalid, false
}
