package interp

import (
	"strings"

	"repro/internal/heapgraph"
	"repro/internal/sexpr"
)

// builtinTypes maps PHP built-in (and WordPress platform) function names to
// result types, initializing the paper's FUNC set (Section III-B3: "FUNC
// is initialized with built-in functions of PHP languages or specific
// platforms (such as WordPress)"). Functions absent from the table yield
// ⊥-typed results.
var builtinTypes = map[string]sexpr.Type{
	// string functions
	"strlen": sexpr.Int, "strpos": sexpr.Int, "strrpos": sexpr.Int,
	"substr": sexpr.String, "str_replace": sexpr.String,
	"strtolower": sexpr.String, "strtoupper": sexpr.String,
	"trim": sexpr.String, "ltrim": sexpr.String, "rtrim": sexpr.String,
	"basename": sexpr.String, "dirname": sexpr.String,
	"sprintf": sexpr.String, "str_ireplace": sexpr.String,
	"preg_replace": sexpr.String, "preg_match": sexpr.Int,
	"md5": sexpr.String, "sha1": sexpr.String, "uniqid": sexpr.String,
	"sanitize_file_name": sexpr.String, "sanitize_text_field": sexpr.String,
	"esc_attr": sexpr.String, "esc_html": sexpr.String, "esc_url": sexpr.String,
	"number_format": sexpr.String, "implode": sexpr.String, "join": sexpr.String,
	"ucfirst": sexpr.String, "lcfirst": sexpr.String, "nl2br": sexpr.String,
	"htmlspecialchars": sexpr.String, "addslashes": sexpr.String,
	"stripslashes": sexpr.String, "urlencode": sexpr.String,
	"rawurlencode": sexpr.String, "base64_encode": sexpr.String,
	"base64_decode": sexpr.String, "wp_generate_password": sexpr.String,

	// numeric functions
	"intval": sexpr.Int, "count": sexpr.Int, "sizeof": sexpr.Int,
	"time": sexpr.Int, "rand": sexpr.Int, "mt_rand": sexpr.Int,
	"filesize": sexpr.Int, "abs": sexpr.Int, "floor": sexpr.Int,
	"ceil": sexpr.Int, "round": sexpr.Int, "min": sexpr.Int, "max": sexpr.Int,
	"strcmp": sexpr.Int, "strcasecmp": sexpr.Int,

	// boolean predicates
	"in_array": sexpr.Bool, "is_array": sexpr.Bool, "is_string": sexpr.Bool,
	"is_numeric": sexpr.Bool, "is_int": sexpr.Bool, "is_dir": sexpr.Bool,
	"file_exists": sexpr.Bool, "is_file": sexpr.Bool, "is_readable": sexpr.Bool,
	"is_writable": sexpr.Bool, "is_uploaded_file": sexpr.Bool,
	"function_exists": sexpr.Bool, "class_exists": sexpr.Bool, "defined": sexpr.Bool,
	"mkdir": sexpr.Bool, "unlink": sexpr.Bool, "chmod": sexpr.Bool,
	"wp_verify_nonce": sexpr.Bool, "current_user_can": sexpr.Bool,
	"is_admin": sexpr.Bool, "is_user_logged_in": sexpr.Bool,
	"wp_mkdir_p": sexpr.Bool, "checked": sexpr.Bool,

	// arrays / platform
	"explode": sexpr.Array, "pathinfo": sexpr.Array, "array_merge": sexpr.Array,
	"array_keys": sexpr.Array, "array_values": sexpr.Array, "array_map": sexpr.Array,
	"wp_upload_dir": sexpr.Array, "get_option": sexpr.Unknown,
	"end": sexpr.Unknown, "reset": sexpr.Unknown, "current": sexpr.Unknown,
	"get_current_user_id": sexpr.Int,
	"wp_die":              sexpr.Null, "add_action": sexpr.Bool, "add_filter": sexpr.Bool,
	"update_option": sexpr.Bool, "delete_option": sexpr.Bool,
	"apply_filters": sexpr.Unknown, "do_action": sexpr.Null,
	"plugin_dir_path": sexpr.String, "plugin_dir_url": sexpr.String,
	"get_bloginfo": sexpr.String, "site_url": sexpr.String, "admin_url": sexpr.String,
	"wp_insert_attachment": sexpr.Int, "update_user_meta": sexpr.Bool,
	"get_user_meta": sexpr.Unknown, "wp_update_attachment_metadata": sexpr.Bool,
	"wp_generate_attachment_metadata": sexpr.Array,
}

// builtinCall models one built-in invocation on one path. Most built-ins
// become FUNC nodes whose semantics the translator discharges per Table II;
// a few structural ones (pathinfo, explode, end, wp_upload_dir) are
// resolved eagerly because they manipulate arrays that only exist inside
// the interpreter.
func (in *Interp) builtinCall(name string, args []heapgraph.Label, e *heapgraph.Env, line int) heapgraph.Label {
	switch name {
	case "pathinfo":
		return in.builtinPathinfo(args, line)
	case "explode":
		return in.builtinExplode(args, line)
	case "end", "array_pop":
		return in.builtinEnd(args, line)
	case "reset", "current", "array_shift":
		return in.builtinFirst(args, line)
	case "wp_upload_dir":
		// The paper models wp_upload_dir() as a symbolic value s_dir; its
		// 'path'/'url' fields are symbolic strings. A pre-structured array
		// gives array accesses stable symbols.
		arr := in.g.NewArray(line)
		in.g.SetElem(arr, "path", in.symbolShared("s_wp_upload_path", sexpr.String, line))
		in.g.SetElem(arr, "url", in.symbolShared("s_wp_upload_url", sexpr.String, line))
		in.g.SetElem(arr, "basedir", in.symbolShared("s_wp_upload_basedir", sexpr.String, line))
		in.g.SetElem(arr, "baseurl", in.symbolShared("s_wp_upload_baseurl", sexpr.String, line))
		in.g.SetElem(arr, "subdir", in.symbolShared("s_wp_upload_subdir", sexpr.String, line))
		in.g.SetElem(arr, "error", in.g.NewConcrete(sexpr.BoolVal(false), line))
		return arr
	case "strtolower", "strtoupper":
		// Lower/upper of a concrete string folds; of the pre-structured
		// name it preserves structure enough for suffix checks, so pass
		// through structurally via a FUNC node.
		if len(args) == 1 {
			if o := in.g.Find(args[0]); o != nil && o.Kind == heapgraph.KindConcrete {
				if s, ok := o.Val.(sexpr.StrVal); ok {
					v := string(s)
					if name == "strtolower" {
						v = strings.ToLower(v)
					} else {
						v = strings.ToUpper(v)
					}
					return in.g.NewConcrete(sexpr.StrVal(v), line)
				}
			}
		}
	case "basename":
		// Concrete fold; otherwise FUNC node for the translator's
		// File Name rule.
		if len(args) >= 1 {
			if o := in.g.Find(args[0]); o != nil && o.Kind == heapgraph.KindConcrete {
				if s, ok := o.Val.(sexpr.StrVal); ok {
					return in.g.NewConcrete(sexpr.StrVal(baseOf(string(s))), line)
				}
			}
		}
	case "dirname":
		if len(args) >= 1 {
			if o := in.g.Find(args[0]); o != nil && o.Kind == heapgraph.KindConcrete {
				if s, ok := o.Val.(sexpr.StrVal); ok {
					return in.g.NewConcrete(sexpr.StrVal(dirOf(string(s))), line)
				}
			}
		}
	case "sanitize_file_name":
		// WordPress's sanitizer strips path separators but keeps the
		// extension — pass the argument through so the extension constraint
		// still sees the structured name.
		if len(args) == 1 {
			return args[0]
		}
	case "sprintf":
		return in.builtinSprintf(args, line)
	case "implode", "join":
		return in.builtinImplode(args, line)
	case "count", "sizeof":
		if len(args) == 1 {
			if info := in.g.Array(args[0]); info != nil {
				return in.g.NewConcrete(sexpr.IntVal(int64(len(info.Keys))), line)
			}
		}
	case "array_merge":
		if len(args) > 0 {
			merged := in.g.NewArray(line)
			for _, a := range args {
				if info := in.g.Array(a); info != nil {
					for _, k := range info.Keys {
						in.g.SetElem(merged, k, info.Elems[k])
					}
				}
			}
			return merged
		}
	}

	t, known := builtinTypes[name]
	if !known {
		t = sexpr.Unknown
	}
	fn := in.g.NewFunc(name, t, line)
	for _, a := range args {
		in.g.AddEdge(fn, a)
	}
	return fn
}

// builtinPathinfo models pathinfo($path[, $flags]). When the path is the
// pre-structured upload name s_name . "." . s_ext, the extension component
// resolves to the s_ext symbol — this is what lets guards like
// `pathinfo($_FILES[$t]['name'], PATHINFO_EXTENSION) !== 'zip'` constrain
// the same symbol the destination path ends with (WP Demo Buddy,
// Listing 8).
func (in *Interp) builtinPathinfo(args []heapgraph.Label, line int) heapgraph.Label {
	if len(args) == 0 {
		return in.g.NewSymbol("", sexpr.Unknown, line)
	}
	pathL := args[0]
	extL, baseL, nameL := in.pathComponents(pathL, line)

	if len(args) >= 2 {
		// Flag-selected component.
		if o := in.g.Find(args[1]); o != nil && o.Kind == heapgraph.KindConcrete {
			if v, ok := o.Val.(sexpr.IntVal); ok {
				switch int64(v) {
				case 4: // PATHINFO_EXTENSION
					return extL
				case 2: // PATHINFO_BASENAME
					return baseL
				case 8: // PATHINFO_FILENAME
					return nameL
				case 1: // PATHINFO_DIRNAME
					return in.g.NewSymbol("", sexpr.String, line)
				}
			}
		}
		return in.g.NewSymbol("", sexpr.String, line)
	}
	arr := in.g.NewArray(line)
	in.g.SetElem(arr, "dirname", in.g.NewSymbol("", sexpr.String, line))
	in.g.SetElem(arr, "basename", baseL)
	in.g.SetElem(arr, "extension", extL)
	in.g.SetElem(arr, "filename", nameL)
	return arr
}

// pathComponents decomposes a path-valued object into (extension,
// basename, filename-without-extension) labels, recognizing the
// pre-structured "name . '.' . ext" concat shape and concrete strings.
func (in *Interp) pathComponents(pathL heapgraph.Label, line int) (ext, base, name heapgraph.Label) {
	o := in.g.Find(pathL)
	if o != nil && o.Kind == heapgraph.KindConcrete {
		if s, ok := o.Val.(sexpr.StrVal); ok {
			b := baseOf(string(s))
			dot := strings.LastIndexByte(b, '.')
			e, n := "", b
			if dot >= 0 {
				e, n = b[dot+1:], b[:dot]
			}
			return in.g.NewConcrete(sexpr.StrVal(e), line),
				in.g.NewConcrete(sexpr.StrVal(b), line),
				in.g.NewConcrete(sexpr.StrVal(n), line)
		}
	}
	// Structured name: concat(..., concat(".", s_ext)) built by the
	// $_FILES model.
	if e, n, ok := in.splitStructuredName(pathL); ok {
		return e, pathL, n
	}
	return in.g.NewSymbol("", sexpr.String, line),
		pathL,
		in.g.NewSymbol("", sexpr.String, line)
}

// splitStructuredName recognizes the $_FILES 'name' shape
// (. s_name (. "." s_ext)) and returns (s_ext, s_name).
func (in *Interp) splitStructuredName(l heapgraph.Label) (ext, name heapgraph.Label, ok bool) {
	o := in.g.Find(l)
	if o == nil || o.Kind != heapgraph.KindOp || o.Name != "." {
		return 0, 0, false
	}
	edges := in.g.Edges(l)
	if len(edges) != 2 {
		return 0, 0, false
	}
	right := in.g.Find(edges[1])
	if right == nil || right.Kind != heapgraph.KindOp || right.Name != "." {
		return 0, 0, false
	}
	rEdges := in.g.Edges(edges[1])
	if len(rEdges) != 2 {
		return 0, 0, false
	}
	dot := in.g.Find(rEdges[0])
	if dot == nil || dot.Kind != heapgraph.KindConcrete {
		return 0, 0, false
	}
	if s, isStr := dot.Val.(sexpr.StrVal); !isStr || s != "." {
		return 0, 0, false
	}
	return rEdges[1], edges[0], true
}

// builtinExplode models explode($sep, $str): when the string is the
// pre-structured name and the separator is ".", the resulting array's last
// element is the extension symbol (the `end(explode('.', $name))` idiom).
func (in *Interp) builtinExplode(args []heapgraph.Label, line int) heapgraph.Label {
	arr := in.g.NewArray(line)
	if len(args) >= 2 {
		sep := in.g.Find(args[0])
		if sep != nil && sep.Kind == heapgraph.KindConcrete {
			if s, ok := sep.Val.(sexpr.StrVal); ok {
				if str := in.g.Find(args[1]); str != nil && str.Kind == heapgraph.KindConcrete {
					if sv, ok2 := str.Val.(sexpr.StrVal); ok2 {
						for _, part := range strings.Split(string(sv), string(s)) {
							in.g.PushElem(arr, in.g.NewConcrete(sexpr.StrVal(part), line))
						}
						return arr
					}
				}
				if s == "." {
					if ext, name, ok := in.splitStructuredName(args[1]); ok {
						in.g.PushElem(arr, name)
						in.g.PushElem(arr, ext)
						return arr
					}
				}
			}
		}
	}
	in.g.PushElem(arr, in.g.NewSymbol("", sexpr.String, line))
	in.g.PushElem(arr, in.g.NewSymbol("", sexpr.String, line))
	return arr
}

// builtinEnd models end()/array_pop(): the last element of a recognized
// array (the paper's Table II "Tail Element" rule), a fresh string symbol
// otherwise.
func (in *Interp) builtinEnd(args []heapgraph.Label, line int) heapgraph.Label {
	if len(args) == 1 {
		if info := in.g.Array(args[0]); info != nil && len(info.Keys) > 0 {
			return info.Elems[info.Keys[len(info.Keys)-1]]
		}
	}
	return in.g.NewSymbol("", sexpr.String, line)
}

func (in *Interp) builtinFirst(args []heapgraph.Label, line int) heapgraph.Label {
	if len(args) == 1 {
		if info := in.g.Array(args[0]); info != nil && len(info.Keys) > 0 {
			return info.Elems[info.Keys[0]]
		}
	}
	return in.g.NewSymbol("", sexpr.String, line)
}

// builtinSprintf models sprintf with %s/%d holes as a concat chain so
// destination names built via sprintf("%s/%s", $dir, $name) keep their
// structure.
func (in *Interp) builtinSprintf(args []heapgraph.Label, line int) heapgraph.Label {
	if len(args) == 0 {
		return in.g.NewSymbol("", sexpr.String, line)
	}
	fo := in.g.Find(args[0])
	if fo == nil || fo.Kind != heapgraph.KindConcrete {
		fn := in.g.NewFunc("sprintf", sexpr.String, line)
		for _, a := range args {
			in.g.AddEdge(fn, a)
		}
		return fn
	}
	format, ok := fo.Val.(sexpr.StrVal)
	if !ok {
		return in.g.NewSymbol("", sexpr.String, line)
	}
	var parts []heapgraph.Label
	rest := string(format)
	argIdx := 1
	for {
		i := strings.IndexByte(rest, '%')
		if i < 0 || i+1 >= len(rest) {
			break
		}
		if rest[i+1] == '%' {
			// literal percent
			parts = append(parts, in.g.NewConcrete(sexpr.StrVal(rest[:i+1]), line))
			rest = rest[i+2:]
			continue
		}
		if i > 0 {
			parts = append(parts, in.g.NewConcrete(sexpr.StrVal(rest[:i]), line))
		}
		// Skip width/precision flags to the conversion letter.
		j := i + 1
		for j < len(rest) && !isConvLetter(rest[j]) {
			j++
		}
		if argIdx < len(args) {
			parts = append(parts, args[argIdx])
			argIdx++
		}
		if j+1 <= len(rest) {
			rest = rest[j+1:]
		} else {
			rest = ""
		}
	}
	if rest != "" {
		parts = append(parts, in.g.NewConcrete(sexpr.StrVal(rest), line))
	}
	if len(parts) == 0 {
		return in.g.NewConcrete(sexpr.StrVal(string(format)), line)
	}
	cur := parts[0]
	for _, p := range parts[1:] {
		op := in.g.NewOp(".", sexpr.String, line)
		in.g.AddEdge(op, cur)
		in.g.AddEdge(op, p)
		cur = op
	}
	return cur
}

func isConvLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// builtinImplode models implode($glue, $array) over recognized arrays.
func (in *Interp) builtinImplode(args []heapgraph.Label, line int) heapgraph.Label {
	if len(args) == 2 {
		if info := in.g.Array(args[1]); info != nil && len(info.Keys) > 0 {
			cur := info.Elems[info.Keys[0]]
			for _, k := range info.Keys[1:] {
				withGlue := in.g.NewOp(".", sexpr.String, line)
				in.g.AddEdge(withGlue, cur)
				in.g.AddEdge(withGlue, args[0])
				cur2 := in.g.NewOp(".", sexpr.String, line)
				in.g.AddEdge(cur2, withGlue)
				in.g.AddEdge(cur2, info.Elems[k])
				cur = cur2
			}
			return cur
		}
	}
	fn := in.g.NewFunc("implode", sexpr.String, line)
	for _, a := range args {
		in.g.AddEdge(fn, a)
	}
	return fn
}
