package interp

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/summary"
)

// FuzzEngineEquivalence feeds arbitrary PHP sources through both
// execution engines and requires byte-identical results: same paths, same
// heap-graph object count and allocation order, same statistics, same
// sink hits. Tight budgets keep pathological inputs bounded.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(`<?php
$n = $_FILES["f"]["name"];
if (strpos($n, ".php") === false) { move_uploaded_file($_FILES["f"]["tmp_name"], "up/" . $n); }
`)
	f.Add(`<?php
function ext($p) { $x = explode(".", $p); return end($x); }
for ($i = 0; $i < $k; $i++) { $s = $s . ext($names[$i]); }
`)
	f.Add(`<?php
foreach ($_POST as $k => $v) { $data[$k] = $v; }
switch ($data["mode"]) { case "w": file_put_contents($f, $data["body"]); break; default: exit; }
`)
	f.Add(`<?php
try { $r = $a ?: ($b ? 1 : 2); throw $e; } catch (E $x) { $r = -1; } finally { $done = true; }
while ($r > 0) { $r--; continue; }
`)
	f.Add(`<?php
class C { function m($v) { return $v . "!"; } }
$o = new C();
echo $o->m((string)(int)$q), "done $q";
`)
	// Constant-foldable opcode runs: pure concrete subexpressions the
	// compiler rewrites into OpFoldedConst superinstructions, mixed with
	// symbolic tails and per-env unary/cast folds.
	f.Add(`<?php
$a = "up" . "loads" . "/" . "img";
$b = 1 + 2 * 3 - (int)"7";
$c = -(5) . (string)(2 + 2) . $sym;
$d = !0;
if ("a" . "b" == "ab") { $e = $a . $b; }
`)
	// Block-cache replay shapes: a function body inlined at three call
	// sites (arm, record, replay) and a loop body revisited with
	// identical live-in state — both must replay bit-identically to
	// execution, which the fingerprint comparison enforces.
	f.Add(`<?php
function tag($x) {
	$t = "pre" . "fix";
	$u = $t . $x;
	return $u;
}
$r = tag($p) . tag($q) . tag($p) . tag($q);
for ($i = 0; $i < 5; $i++) {
	$m = "warn" . "ing";
	$n = strlen($m);
}
`)

	opts := Options{MaxPaths: 200, MaxObjects: 20000, MaxCallDepth: 8, LoopUnroll: 4}
	f.Fuzz(func(t *testing.T, src string) {
		run := func(kind EngineKind) (Result, bool) {
			file, errs := phpparser.Parse("fuzz.php", src)
			if len(errs) > 0 || file == nil {
				return Result{}, false
			}
			root := &callgraph.Node{Kind: callgraph.FileNode, Name: "fuzz.php", File: "fuzz.php"}
			return NewEngineFactory(kind, []*phpast.File{file}).New(opts).Run(context.Background(), root), true
		}
		tree, ok := run(EngineTree)
		if !ok {
			t.Skip("parse errors")
		}
		vm, _ := run(EngineVM)
		if tf, vf := engineFingerprint(tree), engineFingerprint(vm); tf != vf {
			t.Errorf("engines disagree on %q:\n--- tree ---\n%s--- vm ---\n%s", src, tf, vf)
		}
	})
}

// FuzzSummaryEquivalence feeds arbitrary PHP sources through the inline
// and summary interprocedural strategies and requires the invariants the
// strategy is sold on: (a) summary building never panics, (b) tree and
// VM engines agree byte-for-byte under the same summary set, (c) when
// both strategies complete within budget, the summary run explores no
// more paths than inline, every summary sink hit's observable content
// (sink, site, src/dst s-expressions) appears among inline's hits, and
// the first hit per sink site — the one the first-satisfiable-wins
// verifier would report — is identical across strategies.
func FuzzSummaryEquivalence(f *testing.F) {
	f.Add(`<?php
function handler() {
	if ($a) { $fa = 1; } else { $fa = 0; }
	if ($b) { $fb = 1; } else { $fb = 0; }
	move_uploaded_file($_FILES["f"]["tmp_name"], "up/x.php");
}
handler();
`)
	f.Add(`<?php
function pick($x, $y) { return $y; }
function updir() { return "uploads/"; }
$v = pick("a", $_FILES["f"]["name"]);
move_uploaded_file($_FILES["f"]["tmp_name"], updir() . $v);
`)
	f.Add(`<?php
function fill(&$out) { $out = $_FILES["f"]["name"]; }
fill($v);
switch ($s) { case 1: $m = 1; break; case 2: $m = 2; break; default: $m = 0; }
file_put_contents("up/" . $v, $body);
`)
	f.Add(`<?php
function rec($n) { if ($n > 0) { return rec($n - 1); } return $n; }
function a($x) { return b($x); }
function b($x) { return a($x); }
$r = rec(3) . a("q");
move_uploaded_file($_FILES["f"]["tmp_name"], "up/" . $r);
`)
	f.Add(`<?php
function handler() {
	if ($c) { $flag = 1; } else { $flag = 0; }
	if ($c) { $flag2 = 1; } else { $flag2 = 0; }
	$dst = "up/" . $flag . ".php";
	move_uploaded_file($_FILES["f"]["tmp_name"], $dst);
}
handler();
`)

	opts := Options{MaxPaths: 200, MaxObjects: 20000, MaxCallDepth: 8, LoopUnroll: 4}
	f.Fuzz(func(t *testing.T, src string) {
		parse := func() []*phpast.File {
			file, errs := phpparser.Parse("fuzz.php", src)
			if len(errs) > 0 || file == nil {
				return nil
			}
			return []*phpast.File{file}
		}
		files := parse()
		if files == nil {
			t.Skip("parse errors")
		}
		set := summary.Build(files, smt.NewFactory())
		root := func(fs []*phpast.File) *callgraph.Node {
			return &callgraph.Node{Kind: callgraph.FileNode, Name: "fuzz.php", File: "fuzz.php"}
		}
		runOne := func(kind EngineKind, sums *summary.Set) Result {
			o := opts
			o.Summaries = sums
			fs := parse()
			return NewEngineFactory(kind, fs).New(o).Run(context.Background(), root(fs))
		}

		sumTree := runOne(EngineTree, set)
		sumVM := runOne(EngineVM, set)
		if a, b := engineFingerprint(sumTree), engineFingerprint(sumVM); a != b {
			t.Errorf("tree vs vm diverge under summaries:\ntree: %s\nvm:   %s", a, b)
		}

		inline := runOne(EngineTree, nil)
		if inline.Err != nil || sumTree.Err != nil {
			return // a budget abort on either side voids the subset contract
		}
		if sumTree.Paths > inline.Paths {
			t.Errorf("summary explored more paths than inline: %d > %d", sumTree.Paths, inline.Paths)
		}
		hitKey := func(res Result, h SinkHit) string {
			return fmt.Sprintf("%s@%s:%d src=%s dst=%s", h.Sink, h.File, h.Line,
				sexpr.Format(res.Graph.ToSexpr(h.Src)), sexpr.Format(res.Graph.ToSexpr(h.Dst)))
		}
		inlineHits := map[string]int{}
		inlineFirst := map[string]string{}
		for _, h := range inline.Sinks {
			k := hitKey(inline, h)
			inlineHits[k]++
			site := fmt.Sprintf("%s:%d", h.File, h.Line)
			if _, ok := inlineFirst[site]; !ok {
				inlineFirst[site] = k
			}
		}
		sumFirst := map[string]string{}
		for _, h := range sumTree.Sinks {
			k := hitKey(sumTree, h)
			if inlineHits[k] == 0 {
				t.Errorf("summary sink hit absent from inline run: %s", k)
				continue
			}
			inlineHits[k]--
			site := fmt.Sprintf("%s:%d", h.File, h.Line)
			if _, ok := sumFirst[site]; !ok {
				sumFirst[site] = k
			}
		}
		for site, k := range sumFirst {
			if inlineFirst[site] != k {
				t.Errorf("first hit at %s differs:\nsummary: %s\ninline:  %s", site, k, inlineFirst[site])
			}
		}
	})
}
