package interp

import (
	"context"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
)

// FuzzEngineEquivalence feeds arbitrary PHP sources through both
// execution engines and requires byte-identical results: same paths, same
// heap-graph object count and allocation order, same statistics, same
// sink hits. Tight budgets keep pathological inputs bounded.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(`<?php
$n = $_FILES["f"]["name"];
if (strpos($n, ".php") === false) { move_uploaded_file($_FILES["f"]["tmp_name"], "up/" . $n); }
`)
	f.Add(`<?php
function ext($p) { $x = explode(".", $p); return end($x); }
for ($i = 0; $i < $k; $i++) { $s = $s . ext($names[$i]); }
`)
	f.Add(`<?php
foreach ($_POST as $k => $v) { $data[$k] = $v; }
switch ($data["mode"]) { case "w": file_put_contents($f, $data["body"]); break; default: exit; }
`)
	f.Add(`<?php
try { $r = $a ?: ($b ? 1 : 2); throw $e; } catch (E $x) { $r = -1; } finally { $done = true; }
while ($r > 0) { $r--; continue; }
`)
	f.Add(`<?php
class C { function m($v) { return $v . "!"; } }
$o = new C();
echo $o->m((string)(int)$q), "done $q";
`)
	// Constant-foldable opcode runs: pure concrete subexpressions the
	// compiler rewrites into OpFoldedConst superinstructions, mixed with
	// symbolic tails and per-env unary/cast folds.
	f.Add(`<?php
$a = "up" . "loads" . "/" . "img";
$b = 1 + 2 * 3 - (int)"7";
$c = -(5) . (string)(2 + 2) . $sym;
$d = !0;
if ("a" . "b" == "ab") { $e = $a . $b; }
`)
	// Block-cache replay shapes: a function body inlined at three call
	// sites (arm, record, replay) and a loop body revisited with
	// identical live-in state — both must replay bit-identically to
	// execution, which the fingerprint comparison enforces.
	f.Add(`<?php
function tag($x) {
	$t = "pre" . "fix";
	$u = $t . $x;
	return $u;
}
$r = tag($p) . tag($q) . tag($p) . tag($q);
for ($i = 0; $i < 5; $i++) {
	$m = "warn" . "ing";
	$n = strlen($m);
}
`)

	opts := Options{MaxPaths: 200, MaxObjects: 20000, MaxCallDepth: 8, LoopUnroll: 4}
	f.Fuzz(func(t *testing.T, src string) {
		run := func(kind EngineKind) (Result, bool) {
			file, errs := phpparser.Parse("fuzz.php", src)
			if len(errs) > 0 || file == nil {
				return Result{}, false
			}
			root := &callgraph.Node{Kind: callgraph.FileNode, Name: "fuzz.php", File: "fuzz.php"}
			return NewEngineFactory(kind, []*phpast.File{file}).New(opts).Run(context.Background(), root), true
		}
		tree, ok := run(EngineTree)
		if !ok {
			t.Skip("parse errors")
		}
		vm, _ := run(EngineVM)
		if tf, vf := engineFingerprint(tree), engineFingerprint(vm); tf != vf {
			t.Errorf("engines disagree on %q:\n--- tree ---\n%s--- vm ---\n%s", src, tf, vf)
		}
	})
}
