package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// This file holds the engine-independent control-flow core. The tree
// walker and the bytecode VM both execute forks, loops, foreach and try
// through these functions, parameterized only over how a nested body is
// run (recursive AST walk vs. bytecode dispatch). Sharing the fork
// machinery is what makes the two engines byte-for-byte equivalent: every
// heap-graph allocation, statistics increment and environment-ordering
// decision at a control-flow join lives here exactly once.

// bodyFn runs a nested statement region over an environment set.
type bodyFn func(heapgraph.EnvSet) heapgraph.EnvSet

// condFn evaluates a condition expression, returning the possibly grown
// environment set and one condition label per environment.
type condFn func(heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label)

// branch implements the paper's eval(if e then S1 else S2, G, ℰ) given the
// already evaluated condition labels: copy ℰ for the two branches, extend
// reachability with the condition (negated for the false branch), execute
// both, and join. Conditions that evaluate to concrete booleans do not
// fork. A nil runElse appends the false-branch environments unchanged.
func (in *Interp) branch(envs heapgraph.EnvSet, condLabels []heapgraph.Label, line int, runThen, runElse bodyFn) heapgraph.EnvSet {
	var out heapgraph.EnvSet
	var forkT heapgraph.EnvSet
	var forkTLabels []heapgraph.Label
	var forkF heapgraph.EnvSet
	var forkFLabels []heapgraph.Label

	for i, e := range envs {
		// Concrete condition: single branch, no fork.
		if c, ok := in.concreteBool(condLabels[i]); ok {
			in.stats.PathsPruned++
			if c {
				forkT = append(forkT, e)
				forkTLabels = append(forkTLabels, heapgraph.Null)
			} else {
				forkF = append(forkF, e)
				forkFLabels = append(forkFLabels, heapgraph.Null)
			}
			continue
		}
		in.stats.PathsForked++
		te := e.Clone()
		in.stats.PathCondSharedNodes += int64(te.SharedFrames()) + 1
		fe := e
		forkT = append(forkT, te)
		forkTLabels = append(forkTLabels, condLabels[i])
		forkF = append(forkF, fe)
		forkFLabels = append(forkFLabels, condLabels[i])
	}

	if len(forkT) > 0 {
		for i, e := range forkT {
			e.ER(in.g, forkTLabels[i], line)
		}
		out = append(out, runThen(forkT)...)
	}
	if len(forkF) > 0 {
		notShared := map[heapgraph.Label]heapgraph.Label{}
		for i, e := range forkF {
			if forkFLabels[i] != heapgraph.Null {
				not, ok := notShared[forkFLabels[i]]
				if !ok {
					not = in.g.NewOp("!", sexpr.Bool, line)
					in.g.AddEdge(not, forkFLabels[i])
					notShared[forkFLabels[i]] = not
				}
				e.ER(in.g, not, line)
			}
		}
		if runElse != nil {
			out = append(out, runElse(forkF)...)
		} else {
			out = append(out, forkF...)
		}
	}
	return out
}

// condLoop unrolls a condition-guarded loop. Paths that take the
// condition's false branch exit the loop and are not re-forked on later
// iterations; paths still active after the unroll bound simply exit (the
// paper: "UChecker does not precisely model loops"). runPost runs for-loop
// post expressions at every iteration boundary even after a `continue`.
// bodyFirst selects do-while semantics.
func (in *Interp) condLoop(evalCond condFn, runBody, runPost bodyFn, line int, envs heapgraph.EnvSet, bodyFirst bool) heapgraph.EnvSet {
	var exited heapgraph.EnvSet // took the false branch or broke out
	active := envs

	if bodyFirst && len(active) > 0 {
		active = runBody(active)
		active = runPost(active)
	}

	for i := 0; i < in.opts.LoopUnroll; i++ {
		if in.overBudget(active) || len(active) == 0 {
			break
		}
		clearContinues(active)
		var live, held heapgraph.EnvSet
		for _, e := range active {
			if e.BreakN > 0 {
				e.BreakN--
				if e.BreakN > 0 {
					held = append(held, e) // outer levels still unwinding
				} else {
					exited = append(exited, e)
				}
				continue
			}
			if e.Suspended() {
				held = append(held, e) // returned/thrown: carries through
				continue
			}
			live = append(live, e)
		}
		exited = append(exited, held...)
		if len(live) == 0 {
			active = nil
			break
		}
		var condLabels []heapgraph.Label
		live, condLabels = evalCond(live)
		notShared := map[heapgraph.Label]heapgraph.Label{}
		var cont heapgraph.EnvSet
		for j, e := range live {
			if b, ok := in.concreteBool(condLabels[j]); ok {
				in.stats.PathsPruned++
				if b {
					cont = append(cont, e)
				} else {
					exited = append(exited, e)
				}
				continue
			}
			in.stats.PathsForked++
			te := e.Clone()
			in.stats.PathCondSharedNodes += int64(te.SharedFrames()) + 1
			te.ER(in.g, condLabels[j], line)
			cont = append(cont, te)
			not, ok := notShared[condLabels[j]]
			if !ok {
				not = in.g.NewOp("!", sexpr.Bool, line)
				in.g.AddEdge(not, condLabels[j])
				notShared[condLabels[j]] = not
			}
			e.ER(in.g, not, line)
			exited = append(exited, e)
		}
		cont = runBody(cont)
		cont = runPost(cont)
		active = cont
	}
	// Paths still active after the unroll bound exit without a constraint.
	// Only they still carry unconsumed break/continue flags — paths in
	// `exited` consumed theirs when the iteration split saw them.
	consumeLoopControl(active)
	return append(exited, active...)
}

// foreachLoop iterates a foreach body given the already evaluated array
// labels. When the array object is known, its elements are iterated
// (bounded by the unroll limit); otherwise fresh symbols are bound and the
// body runs once. hasKey reports whether the key target is a simple
// variable named keyName; assignVal writes one iteration's value label
// through the loop's value target on a single path.
func (in *Interp) foreachLoop(envs heapgraph.EnvSet, arrLabels []heapgraph.Label, line int, keyName string, hasKey bool, assignVal func(*heapgraph.Env, heapgraph.Label) heapgraph.EnvSet, runBody bodyFn) heapgraph.EnvSet {
	// Park the array label on each path's operand stack so body forks keep
	// their copy aligned.
	pushTmp(envs, arrLabels)

	for iter := 0; iter < in.opts.LoopUnroll; iter++ {
		if in.overBudget(envs) {
			break
		}
		clearContinues(envs)
		var live, held heapgraph.EnvSet
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			break
		}
		anyBound := false
		var iterating heapgraph.EnvSet
		for _, e := range live {
			arr := e.Tmp[len(e.Tmp)-1] // peek parked array label
			info := in.g.Array(arr)
			var keyLabel, valLabel heapgraph.Label
			switch {
			case arr == in.filesArr && in.filesArr != heapgraph.Null:
				// foreach over $_FILES (multi-file upload forms): one
				// symbolic iteration binding the shared pre-structured
				// upload family, keeping taint and the structured name.
				if iter > 0 {
					held = append(held, e)
					continue
				}
				keyLabel = in.g.NewSymbol("", sexpr.String, line)
				valLabel = in.filesField("*", line)
			case info != nil && iter < len(info.Keys):
				k := info.Keys[iter]
				keyLabel = in.g.NewConcrete(sexpr.StrVal(k), line)
				valLabel = info.Elems[k]
			case info != nil:
				held = append(held, e) // array exhausted for this path
				continue
			default:
				if iter > 0 {
					held = append(held, e) // symbolic arrays iterate once
					continue
				}
				keyLabel = in.g.NewSymbol("", sexpr.Unknown, line)
				valLabel = in.g.NewSymbol("", sexpr.Unknown, line)
			}
			anyBound = true
			if hasKey {
				e.Bind(keyName, keyLabel)
			}
			iterating = append(assignVal(e, valLabel), iterating...)
		}
		if !anyBound {
			envs = append(iterating, held...)
			break
		}
		iterating = runBody(iterating)
		envs = append(iterating, held...)
	}
	popTmp(envs)
	consumeLoopControl(envs)
	return envs
}

// catchClause is one catch arm of tryJoin.
type catchClause struct {
	varName string
	line    int
	run     bodyFn
}

// tryJoin executes a try statement: the body executes; catch bodies are
// alternate paths joined afterwards (any statement may throw, so catches
// are reachable); finally runs on every path.
func (in *Interp) tryJoin(envs heapgraph.EnvSet, runBody bodyFn, catches []catchClause, runFinally bodyFn) heapgraph.EnvSet {
	bodyEnvs := runBody(envs)
	all := bodyEnvs
	for _, c := range catches {
		catchEnvs := envs.CloneAll()
		in.stats.PathsForked += int64(len(catchEnvs))
		for _, e := range catchEnvs {
			in.stats.PathCondSharedNodes += int64(e.SharedFrames()) + 1
		}
		for _, e := range catchEnvs {
			if c.varName != "" {
				e.Bind(c.varName, in.g.NewSymbol("s_exc_"+c.varName, sexpr.Unknown, c.line))
			}
		}
		all = append(all, c.run(catchEnvs)...)
	}
	if runFinally != nil {
		all = runFinally(all)
	}
	return all
}

// inlineFrame inlines one user-function call given the callee's shape and
// a body runner: recursion/depth cuts yield an opaque symbolic result;
// otherwise each path gets a fresh scope with parameters bound, the body
// runs, and return values (or implicit nulls) are collected as the scope
// pops.
func (in *Interp) inlineFrame(lname string, params []phpast.Param, declLine, endLine, line int, argMatrix [][]heapgraph.Label, envs heapgraph.EnvSet, thisLabel heapgraph.Label, runBody bodyFn) (heapgraph.EnvSet, []heapgraph.Label) {
	// Recursion or depth cut: opaque symbolic result.
	cut := len(in.callStack) >= in.opts.MaxCallDepth
	for _, f := range in.callStack {
		if f == lname {
			cut = true
			break
		}
	}
	if cut {
		l := in.g.NewSymbol("s_ret_"+lname, sexpr.Unknown, line)
		return envs, sameLabel(envs, l)
	}

	// Summary strategy (after the cut check, so cut paths stay
	// byte-identical to inline mode): trivial callees instantiate
	// without a frame; escaped callees inline plainly; everything else
	// inlines under merge metadata.
	withMerge := false
	if thisLabel == heapgraph.Null {
		if sum := in.callSummary(lname); sum != nil {
			switch {
			case sum.Escapes:
				in.stats.SummaryEscapedCallees++
			case sum.Trivial():
				if sum.ReturnFormal >= 0 {
					// return formal i: hand back the actuals directly —
					// zero allocations, exactly like the inlined body.
					i := sum.ReturnFormal
					ok := true
					for _, args := range argMatrix {
						if i >= len(args) || args[i] == heapgraph.Null {
							ok = false
							break
						}
					}
					if ok {
						in.stats.SummaryInstantiated++
						labels := make([]heapgraph.Label, len(envs))
						for r := range envs {
							labels[r] = argMatrix[r][i]
						}
						return envs, labels
					}
					// A missing actual would take the default/symbol
					// path inside the frame; fall through to inlining.
				} else if sum.ReturnConst != nil {
					// return <literal>: one shared concrete, matching
					// the single evaluation the inlined body performs.
					in.stats.SummaryInstantiated++
					l := in.g.NewConcrete(sum.ReturnConst, sum.ReturnLine)
					return envs, sameLabel(envs, l)
				}
			default:
				in.stats.SummaryInstantiated++
				withMerge = true
			}
		}
	}

	in.callStack = append(in.callStack, lname)
	defer func() { in.callStack = in.callStack[:len(in.callStack)-1] }()

	for i, e := range envs {
		args := argMatrix[i]
		e.PushScope()
		if thisLabel != heapgraph.Null {
			e.Bind("this", thisLabel)
		}
		for j, p := range params {
			var l heapgraph.Label
			if j < len(args) && args[j] != heapgraph.Null {
				l = args[j]
			} else if p.Default != nil {
				// Defaults are constant expressions; evaluate on a singleton
				// set (cannot fork).
				_, ls := in.eval(p.Default, heapgraph.EnvSet{e})
				l = ls[0]
			} else {
				l = in.g.NewSymbol("s_param_"+p.Name, sexpr.Unknown, declLine)
			}
			e.Bind(p.Name, l)
		}
	}
	var popMerge func()
	if withMerge {
		// Metadata is pushed after the scopes exist so the recorded
		// depth is the depth the body's statements run at.
		popMerge = in.pushMergeScope(lname, envs)
	}
	envs = runBody(envs)
	if popMerge != nil {
		popMerge()
	}
	labels := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		if e.Returned != heapgraph.Null {
			labels[i] = e.Returned
		} else {
			labels[i] = in.g.NewConcrete(sexpr.NullVal{}, endLine)
		}
		e.PopScope()
	}
	return envs, labels
}
