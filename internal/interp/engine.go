package interp

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/ir"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// EngineKind selects a symbolic-execution engine implementation.
type EngineKind string

const (
	// EngineTree is the recursive AST walker (the default).
	EngineTree EngineKind = "tree"
	// EngineVM dispatches compiled ir bytecode.
	EngineVM EngineKind = "vm"
)

// ParseEngineKind parses a -engine flag value. The empty string selects
// the tree walker.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "", string(EngineTree):
		return EngineTree, nil
	case string(EngineVM):
		return EngineVM, nil
	default:
		return "", fmt.Errorf("unknown engine %q (want tree or vm)", s)
	}
}

// InterprocKind selects the interprocedural call strategy.
type InterprocKind string

const (
	// InterprocInline inlines every user-function call (the default,
	// and the paper's behavior).
	InterprocInline InterprocKind = "inline"
	// InterprocSummary instantiates per-function symbolic summaries
	// where possible (trivial returns without a frame; path merging at
	// statement boundaries inside summarized scopes) and falls back to
	// inlining for escaped callees.
	InterprocSummary InterprocKind = "summary"
)

// ParseInterprocKind parses a -interproc flag value. The empty string
// selects inlining.
func ParseInterprocKind(s string) (InterprocKind, error) {
	switch s {
	case "", string(InterprocInline):
		return InterprocInline, nil
	case string(InterprocSummary):
		return InterprocSummary, nil
	default:
		return "", fmt.Errorf("unknown interproc mode %q (want inline or summary)", s)
	}
}

// Engine executes one analysis root symbolically. Implementations are
// single-use and not safe for concurrent Run calls; create one per root
// via EngineFactory.New.
type Engine interface {
	Run(ctx context.Context, root *callgraph.Node) Result
}

// EngineFactory builds per-root engines over a shared file set. For the
// VM engine the bytecode program is compiled exactly once here and shared
// (read-only) by every root and every retry rung, which is what the
// ir_compile_cache_hits counter measures.
type EngineFactory struct {
	kind  EngineKind
	files []*phpast.File
	prog  *ir.Program
	news  atomic.Int64
}

// NewEngineFactory compiles the program (for the VM engine) and returns
// the factory. An empty kind means EngineTree.
func NewEngineFactory(kind EngineKind, files []*phpast.File) *EngineFactory {
	if kind == "" {
		kind = EngineTree
	}
	f := &EngineFactory{kind: kind, files: files}
	if kind == EngineVM {
		f.prog = ir.Compile(files)
	}
	return f
}

// Kind reports the engine implementation this factory builds.
func (f *EngineFactory) Kind() EngineKind { return f.kind }

// FunctionsCompiled reports the number of compiled bytecode units
// (functions plus file top-levels); zero for the tree engine.
func (f *EngineFactory) FunctionsCompiled() int {
	if f.prog == nil {
		return 0
	}
	return f.prog.FunctionsCompiled
}

// ConstsFolded reports the number of constant-foldable opcode runs the
// compiler rewrote into OpFoldedConst superinstructions; zero for the
// tree engine.
func (f *EngineFactory) ConstsFolded() int {
	if f.prog == nil {
		return 0
	}
	return f.prog.ConstsFolded
}

// CacheHits reports how many engine instantiations reused the shared
// compiled program instead of recompiling (every New call after the
// first); zero for the tree engine.
func (f *EngineFactory) CacheHits() int64 {
	n := f.news.Load()
	if f.prog == nil || n == 0 {
		return 0
	}
	return n - 1
}

// New builds a fresh engine (fresh heap graph and statistics) for one
// root execution.
func (f *EngineFactory) New(opts Options) Engine {
	f.news.Add(1)
	in := New(f.files, opts)
	if f.kind == EngineVM {
		return &vmEngine{in: in, prog: f.prog}
	}
	return treeEngine{in: in}
}

// treeEngine adapts the recursive AST walker to the Engine interface.
type treeEngine struct{ in *Interp }

func (t treeEngine) Run(ctx context.Context, root *callgraph.Node) Result {
	return t.in.RunRootCtx(ctx, root)
}

// vmEngine executes roots by dispatching the shared compiled program.
// Rare constructs escape to the embedded tree walker per instruction, so
// the two engines share every heap-graph allocation path.
type vmEngine struct {
	in   *Interp
	prog *ir.Program
}

func (ve *vmEngine) Run(ctx context.Context, root *callgraph.Node) Result {
	in := ve.in
	in.ctx = ctx
	// The block-fact cache keys span effects on the live env-set
	// fingerprint; path merging rewrites env sets between spans, so the
	// two features are mutually exclusive (summary mode wins).
	if !in.opts.NoBlockCache && in.opts.Summaries == nil {
		in.blockCache = newBlockCache()
	}
	v := &vmRun{in: in, prog: ve.prog}
	envs := heapgraph.EnvSet{heapgraph.NewEnv()}
	in.curFile = root.File
	switch root.Kind {
	case callgraph.FileNode:
		if f := in.files[root.Name]; f != nil {
			in.curFile = f.Name
			envs = v.runCode(ve.prog.Files[f.Name], envs)
		}
	case callgraph.FuncNode:
		if root.Func != nil {
			env := envs[0]
			for _, p := range root.Func.Params {
				t := sexpr.Unknown
				if p.Type == "array" {
					t = sexpr.Array
				}
				env.Bind(p.Name, in.g.NewSymbol("s_param_"+p.Name, t, root.Func.P.Line))
			}
			pop := in.pushMergeScope(strings.ToLower(root.Func.Name), envs)
			if body := ve.bodyCode(root.Func.Body); body != nil {
				envs = v.runCode(body, envs)
			} else {
				// Empty or unregistered body: the tree path is a no-op-safe
				// fallback with identical semantics.
				envs = in.execStmts(root.Func.Body, envs)
			}
			pop()
		}
	}
	in.stats.IRInstructionsExecuted += v.instrs
	in.stats.VMDispatchLoops += v.spans
	return Result{
		Graph: in.g,
		Envs:  envs,
		Sinks: in.sinks,
		Paths: len(envs),
		Stats: in.stats,
		Err:   in.budgetErr,
	}
}

// bodyCode resolves a root function body to its compiled code. Roots for
// class methods reference synthesized FuncDecl wrappers, but those share
// the method's body slice, so the first-statement address lookup matches.
func (ve *vmEngine) bodyCode(body []phpast.Stmt) *ir.Code {
	if len(body) == 0 {
		return nil
	}
	if fn := ve.prog.ByBody[&body[0]]; fn != nil {
		return fn.Body
	}
	return nil
}
