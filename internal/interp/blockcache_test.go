package interp

import (
	"context"
	"testing"

	"repro/internal/phpast"
	"repro/internal/phpparser"
)

// cacheParitySrc exercises all three VM statement paths in one program:
// plain bytecode execution (the assignments), an escape to the tree
// walker (the method call compiles to OpEvalExpr), and block-cache
// replay (banner's body span: the first call arms it, the second
// records, the third and fourth replay).
const cacheParitySrc = `<?php
function banner() {
	$msg = "warn" . "ing";
	return $msg;
}
$a = 1 + 2;
$obj->notify($a);
banner();
banner();
banner();
banner();
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`

// runVM executes cacheParitySrc-style sources under the VM engine only.
func runVM(t *testing.T, src string, opts Options) Result {
	t.Helper()
	f, errs := phpparser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	files := []*phpast.File{f}
	return NewEngineFactory(EngineVM, files).New(opts).
		Run(context.Background(), fileRoot("test.php")(files))
}

// TestBlockCacheCounterParity is the regression test for the
// executed/escaped/replayed counter discipline: a replayed span must
// charge ir_instructions_executed and vm_dispatch_loops exactly as the
// execution it stands in for, and an escaped statement must charge them
// identically whether or not the cache is enabled. Everything observable
// except the hit/miss tallies themselves must be bit-identical between a
// cached and an uncached VM run.
func TestBlockCacheCounterParity(t *testing.T) {
	cached := runVM(t, cacheParitySrc, Options{})
	plain := runVM(t, cacheParitySrc, Options{NoBlockCache: true})

	if cached.Stats.BlockCacheHits == 0 {
		t.Fatalf("cached run recorded no block-cache hits; the program is meant to replay banner's body")
	}
	if plain.Stats.BlockCacheHits != 0 || plain.Stats.BlockCacheMisses != 0 {
		t.Errorf("NoBlockCache run tallied cache traffic: hits=%d misses=%d",
			plain.Stats.BlockCacheHits, plain.Stats.BlockCacheMisses)
	}

	// The execution-volume counters must agree exactly: replay charges
	// the replayed span's instruction count and one dispatch loop, the
	// same as executing it.
	if cached.Stats.IRInstructionsExecuted != plain.Stats.IRInstructionsExecuted {
		t.Errorf("ir_instructions_executed differs: cached=%d plain=%d",
			cached.Stats.IRInstructionsExecuted, plain.Stats.IRInstructionsExecuted)
	}
	if cached.Stats.VMDispatchLoops != plain.Stats.VMDispatchLoops {
		t.Errorf("vm_dispatch_loops differs: cached=%d plain=%d",
			cached.Stats.VMDispatchLoops, plain.Stats.VMDispatchLoops)
	}

	// All remaining stats and the full observable result must be
	// bit-identical (EngineInvariant zeroes the four VM counters, so the
	// fingerprint compares everything else).
	cs, ps := cached.Stats, plain.Stats
	cs.BlockCacheHits, cs.BlockCacheMisses = 0, 0
	ps.BlockCacheHits, ps.BlockCacheMisses = 0, 0
	if cs != ps {
		t.Errorf("stats differ beyond cache tallies:\ncached=%+v\nplain =%+v", cs, ps)
	}
	if cf, pf := engineFingerprint(cached), engineFingerprint(plain); cf != pf {
		t.Errorf("results differ:\n--- cached ---\n%s--- plain ---\n%s", cf, pf)
	}
}

// TestBlockCacheTreeEquivalence pins the cached VM run against the tree
// walker over the same mixed executed/escaped/replayed program.
func TestBlockCacheTreeEquivalence(t *testing.T) {
	assertEnginesAgree(t, cacheParitySrc, Options{})
}

// TestBlockCacheRaisedUnrollLoopReplay covers the loop-shaped replay
// path: with LoopUnroll high enough for a third iteration, a loop body's
// span arms on the first iteration, records on the second, and replays
// from the third on — with counters and results identical to the
// uncached run.
func TestBlockCacheRaisedUnrollLoopReplay(t *testing.T) {
	src := `<?php
for ($i = 0; $i < 4; $i++) {
	$msg = "warn" . "ing";
}
`
	opts := Options{LoopUnroll: 4}
	cached := runVM(t, src, opts)
	plain := runVM(t, src, Options{LoopUnroll: 4, NoBlockCache: true})
	if cached.Stats.BlockCacheHits == 0 {
		t.Fatalf("loop body never replayed at LoopUnroll=4")
	}
	if cached.Stats.IRInstructionsExecuted != plain.Stats.IRInstructionsExecuted ||
		cached.Stats.VMDispatchLoops != plain.Stats.VMDispatchLoops {
		t.Errorf("counter deltas differ: cached instrs=%d loops=%d, plain instrs=%d loops=%d",
			cached.Stats.IRInstructionsExecuted, cached.Stats.VMDispatchLoops,
			plain.Stats.IRInstructionsExecuted, plain.Stats.VMDispatchLoops)
	}
	if cf, pf := engineFingerprint(cached), engineFingerprint(plain); cf != pf {
		t.Errorf("results differ:\n--- cached ---\n%s--- plain ---\n%s", cf, pf)
	}
	assertEnginesAgree(t, src, opts)
}
