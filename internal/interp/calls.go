package interp

import (
	"strings"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// evalCall dispatches a function call: sinks are recorded, user functions
// are inlined context-sensitively, built-ins are modeled, and everything
// else becomes a FUNC node with a typed symbolic result.
func (in *Interp) evalCall(x *phpast.Call, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	name, named := phpast.CalleeName(x)

	// call_user_func('fn', args...) indirection.
	if named && (name == "call_user_func" || name == "call_user_func_array") && len(x.Args) > 0 {
		if lit, ok := x.Args[0].(*phpast.StringLit); ok {
			inner := &phpast.Call{P: x.P, Func: &phpast.Name{P: x.P, Value: lit.Value}, Args: x.Args[1:]}
			return in.evalCall(inner, envs)
		}
	}

	// Evaluate arguments (left to right), parking on the operand stack.
	for _, a := range x.Args {
		var ls []heapgraph.Label
		envs, ls = in.eval(a, envs)
		pushTmp(envs, ls)
	}
	argVec := func(e *heapgraph.Env) []heapgraph.Label {
		args := make([]heapgraph.Label, len(x.Args))
		for j := len(x.Args) - 1; j >= 0; j-- {
			args[j] = e.PopTmp()
		}
		return args
	}

	if !named {
		// Variable function: opaque symbolic result.
		labels := make([]heapgraph.Label, len(envs))
		for i, e := range envs {
			args := argVec(e)
			fn := in.g.NewFunc("call_dynamic", sexpr.Unknown, x.P.Line)
			for _, a := range args {
				in.g.AddEdge(fn, a)
			}
			labels[i] = fn
		}
		return envs, labels
	}

	// Sink?
	if callgraph.Sinks[name] {
		labels := make([]heapgraph.Label, len(envs))
		for i, e := range envs {
			args := argVec(e)
			labels[i] = in.recordSink(name, args, e, x.P.Line)
		}
		return envs, labels
	}

	// User function?
	if decl, ok := in.funcs[name]; ok {
		// Pop args per env into a parallel matrix.
		argMatrix := make([][]heapgraph.Label, len(envs))
		for i, e := range envs {
			argMatrix[i] = argVec(e)
		}
		return in.inlineCall(decl, argMatrix, envs, heapgraph.Null, x.P.Line)
	}

	// Built-in model or generic FUNC node.
	labels := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		args := argVec(e)
		labels[i] = in.builtinCall(name, args, e, x.P.Line)
	}
	return envs, labels
}

// recordSink records a sink invocation on one path and returns the sink's
// boolean FUNC object.
func (in *Interp) recordSink(name string, args []heapgraph.Label, e *heapgraph.Env, line int) heapgraph.Label {
	var src, dst heapgraph.Label
	switch name {
	case "file_put_contents", "file_put_content":
		// file_put_contents($dst, $src)
		if len(args) > 0 {
			dst = args[0]
		}
		if len(args) > 1 {
			src = args[1]
		}
	default:
		// move_uploaded_file($src, $dst), copy($src, $dst), rename($src, $dst)
		if len(args) > 0 {
			src = args[0]
		}
		if len(args) > 1 {
			dst = args[1]
		}
	}
	in.sinks = append(in.sinks, SinkHit{
		Sink: name,
		Line: line,
		File: in.curFile,
		Src:  src,
		Dst:  dst,
		Env:  e.Clone(),
	})
	fn := in.g.NewFunc(name, sexpr.Bool, line)
	for _, a := range args {
		in.g.AddEdge(fn, a)
	}
	return fn
}

// inlineCall executes a user function body per path, with a fresh scope
// per environment. Forks inside the callee propagate to the caller
// naturally, because the callee's environments are the callers' with one
// extra scope frame.
func (in *Interp) inlineCall(decl *phpast.FuncDecl, argMatrix [][]heapgraph.Label, envs heapgraph.EnvSet, thisLabel heapgraph.Label, line int) (heapgraph.EnvSet, []heapgraph.Label) {
	return in.inlineFrame(strings.ToLower(decl.Name), decl.Params, decl.P.Line, decl.EndLine, line, argMatrix, envs, thisLabel,
		func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execStmts(decl.Body, es) })
}

// inlineCallWithThis evaluates constructor arguments then inlines the
// method with $this bound.
func (in *Interp) inlineCallWithThis(decl *phpast.FuncDecl, argExprs []phpast.Expr, envs heapgraph.EnvSet, thisLabels []heapgraph.Label, line int) (heapgraph.EnvSet, []heapgraph.Label) {
	pushTmp(envs, thisLabels)
	for _, a := range argExprs {
		var ls []heapgraph.Label
		envs, ls = in.eval(a, envs)
		pushTmp(envs, ls)
	}
	argMatrix := make([][]heapgraph.Label, len(envs))
	this := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		args := make([]heapgraph.Label, len(argExprs))
		for j := len(argExprs) - 1; j >= 0; j-- {
			args[j] = e.PopTmp()
		}
		argMatrix[i] = args
		this[i] = e.PopTmp()
	}
	// Inline per common this label; constructors keep the object labels.
	var out heapgraph.EnvSet
	var outLabels []heapgraph.Label
	for i, e := range envs {
		sub, _ := in.inlineCall(decl, [][]heapgraph.Label{argMatrix[i]}, heapgraph.EnvSet{e}, this[i], line)
		for range sub {
			outLabels = append(outLabels, this[i])
		}
		out = append(out, sub...)
	}
	return out, outLabels
}

func (in *Interp) evalMethodCall(x *phpast.MethodCall, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var objs []heapgraph.Label
	envs, objs = in.eval(x.Obj, envs)
	pushTmp(envs, objs)
	for _, a := range x.Args {
		var ls []heapgraph.Label
		envs, ls = in.eval(a, envs)
		pushTmp(envs, ls)
	}
	argMatrix := make([][]heapgraph.Label, len(envs))
	this := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		args := make([]heapgraph.Label, len(x.Args))
		for j := len(x.Args) - 1; j >= 0; j-- {
			args[j] = e.PopTmp()
		}
		argMatrix[i] = args
		this[i] = e.PopTmp()
	}

	if decl, ok := in.funcs[strings.ToLower(x.Method)]; ok {
		var out heapgraph.EnvSet
		var outLabels []heapgraph.Label
		for i, e := range envs {
			sub, ls := in.inlineCall(decl, [][]heapgraph.Label{argMatrix[i]}, heapgraph.EnvSet{e}, this[i], x.P.Line)
			out = append(out, sub...)
			outLabels = append(outLabels, ls...)
		}
		return out, outLabels
	}
	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		fn := in.g.NewFunc("method_"+strings.ToLower(x.Method), sexpr.Unknown, x.P.Line)
		in.g.AddEdge(fn, this[i])
		for _, a := range argMatrix[i] {
			in.g.AddEdge(fn, a)
		}
		labels[i] = fn
	}
	return envs, labels
}

func (in *Interp) evalStaticCall(x *phpast.StaticCall, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	call := &phpast.Call{P: x.P, Func: &phpast.Name{P: x.P, Value: x.Class + "::" + x.Method}, Args: x.Args}
	if _, ok := in.funcs[strings.ToLower(x.Class+"::"+x.Method)]; ok {
		return in.evalCall(call, envs)
	}
	call.Func = &phpast.Name{P: x.P, Value: x.Method}
	return in.evalCall(call, envs)
}
