package interp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
)

// val renders the binding of a variable on the first path.
func val(t *testing.T, res Result, name string) string {
	t.Helper()
	if len(res.Envs) == 0 {
		t.Fatal("no paths")
	}
	return sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get(name)))
}

func TestForLoopConcrete(t *testing.T) {
	src := `<?php
$s = "";
for ($i = 0; $i < 2; $i++) {
	$s = $s . "x";
}
$n = $i;
`
	res := run(t, src, Options{LoopUnroll: 4})
	if res.Paths != 1 {
		t.Fatalf("paths = %d (concrete loop must not fork)", res.Paths)
	}
	if got := val(t, res, "s"); got != `"xx"` {
		t.Errorf("s = %s", got)
	}
	if got := val(t, res, "n"); got != "2" {
		t.Errorf("n = %s", got)
	}
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	src := `<?php
$x = 0;
do {
	$x = $x + 1;
} while (false);
`
	res := run(t, src, Options{})
	if got := val(t, res, "x"); got != "1" {
		t.Errorf("x = %s", got)
	}
}

func TestContinueSkipsRest(t *testing.T) {
	src := `<?php
$hits = 0;
$skipped = 0;
for ($i = 0; $i < 2; $i++) {
	$hits = $hits + 1;
	continue;
	$skipped = $skipped + 1;
}
`
	res := run(t, src, Options{LoopUnroll: 4})
	if got := val(t, res, "hits"); got != "2" {
		t.Errorf("hits = %s", got)
	}
	if got := val(t, res, "skipped"); got != "0" {
		t.Errorf("skipped = %s", got)
	}
}

func TestTryCatchFinallyPaths(t *testing.T) {
	src := `<?php
try {
	$x = "body";
} catch (Exception $e) {
	$x = "caught";
} finally {
	$done = 1;
}
`
	res := run(t, src, Options{})
	// Two paths: body and catch, both through finally.
	if res.Paths != 2 {
		t.Fatalf("paths = %d", res.Paths)
	}
	for _, e := range res.Envs {
		if got := sexpr.Format(res.Graph.ToSexpr(e.Get("done"))); got != "1" {
			t.Errorf("finally missed on a path: done = %s", got)
		}
	}
}

func TestThrowTerminates(t *testing.T) {
	src := `<?php
if ($bad) {
	throw new Exception("nope");
}
$x = 1;
`
	res := run(t, src, Options{})
	var terminated int
	for _, e := range res.Envs {
		if e.Terminated {
			terminated++
		}
	}
	if terminated != 1 {
		t.Errorf("terminated paths = %d, want 1", terminated)
	}
}

func TestUnsetRemovesBinding(t *testing.T) {
	src := `<?php
$x = 1;
unset($x);
`
	res := run(t, src, Options{})
	if res.Envs[0].Has("x") {
		t.Error("unset should remove the binding")
	}
}

func TestStaticVarsInit(t *testing.T) {
	src := `<?php
static $count = 5, $label;
$c = $count;
`
	res := run(t, src, Options{})
	if got := val(t, res, "c"); got != "5" {
		t.Errorf("c = %s", got)
	}
	if res.Envs[0].Get("label") == heapgraph.Null {
		t.Error("uninitialized static should get a symbol")
	}
}

func TestIssetAndEmptySymbolic(t *testing.T) {
	src := `<?php
$a = isset($_FILES['f']);
$b = empty($maybe);
`
	res := run(t, src, Options{})
	if got := val(t, res, "a"); !strings.Contains(got, "isset") {
		t.Errorf("a = %s", got)
	}
	if got := val(t, res, "b"); !strings.Contains(got, "empty") {
		t.Errorf("b = %s", got)
	}
}

func TestListDestructuring(t *testing.T) {
	src := `<?php
list($first, $second) = array("a", "b");
`
	res := run(t, src, Options{})
	if got := val(t, res, "first"); got != `"a"` {
		t.Errorf("first = %s", got)
	}
	if got := val(t, res, "second"); got != `"b"` {
		t.Errorf("second = %s", got)
	}
}

func TestIncDecSemantics(t *testing.T) {
	src := `<?php
$i = 5;
$post = $i++;
$j = 5;
$pre = ++$j;
`
	res := run(t, src, Options{})
	if got := val(t, res, "post"); got != "5" {
		t.Errorf("post = %s (post-increment returns old)", got)
	}
	if got := val(t, res, "i"); got != "6" {
		t.Errorf("i = %s", got)
	}
	if got := val(t, res, "pre"); got != "6" {
		t.Errorf("pre = %s (pre-increment returns new)", got)
	}
}

func TestCastsConcrete(t *testing.T) {
	src := `<?php
$a = (int)"42x";
$b = (string)7;
$c = (bool)"";
`
	res := run(t, src, Options{})
	// (int)"42x" is not concretely foldable (string isn't numeric per our
	// conservative model) — it becomes a cast node; (string)7 folds.
	if got := val(t, res, "b"); got != `"7"` {
		t.Errorf("b = %s", got)
	}
	if got := val(t, res, "c"); got != "false" {
		t.Errorf("c = %s", got)
	}
	if got := val(t, res, "a"); got == "42" {
		t.Errorf("a = %s (non-numeric cast should stay symbolic)", got)
	}
}

func TestTernaryShortForm(t *testing.T) {
	src := `<?php
$x = $maybe ?: "fallback";
`
	res := run(t, src, Options{})
	got := val(t, res, "x")
	if !strings.Contains(got, "ite") || !strings.Contains(got, `"fallback"`) {
		t.Errorf("x = %s", got)
	}
}

func TestCoalesceConcrete(t *testing.T) {
	src := `<?php
$a = null ?? "right";
$b = "left" ?? "unused";
`
	res := run(t, src, Options{})
	if got := val(t, res, "a"); got != `"right"` {
		t.Errorf("a = %s", got)
	}
	if got := val(t, res, "b"); got != `"left"` {
		t.Errorf("b = %s", got)
	}
}

func TestCallUserFuncIndirection(t *testing.T) {
	src := `<?php
function target($v) { return $v . "!"; }
$r = call_user_func('target', "hi");
`
	res := run(t, src, Options{})
	if got := val(t, res, "r"); got != `"hi!"` {
		t.Errorf("r = %s", got)
	}
}

func TestVariableFunctionOpaque(t *testing.T) {
	src := `<?php
$fn = $_POST['callback'];
$r = $fn("arg");
`
	res := run(t, src, Options{})
	got := val(t, res, "r")
	if !strings.Contains(got, "call_dynamic") {
		t.Errorf("r = %s", got)
	}
}

func TestConstructorRuns(t *testing.T) {
	src := `<?php
class Box {
	public function __construct($v) {
		$this->value = $v;
	}
}
$b = new Box(9);
$out = $b->value;
`
	res := run(t, src, Options{})
	if got := val(t, res, "out"); got != "9" {
		t.Errorf("out = %s", got)
	}
}

func TestPropertyReadWrite(t *testing.T) {
	src := `<?php
$o = new stdClass();
$o->name = "p";
$r = $o->name;
`
	res := run(t, src, Options{})
	if got := val(t, res, "r"); got != `"p"` {
		t.Errorf("r = %s", got)
	}
}

func TestStaticCallResolution(t *testing.T) {
	src := `<?php
class Util {
	public static function double($x) { return $x * 2; }
}
$r = Util::double(21);
`
	res := run(t, src, Options{})
	if got := val(t, res, "r"); got != "42" {
		t.Errorf("r = %s", got)
	}
}

func TestBuiltinSprintfStructured(t *testing.T) {
	src := `<?php
$p = sprintf("%s/%s.bak", $dir, $_FILES['f']['name']);
`
	res := run(t, src, Options{})
	got := val(t, res, "p")
	if !strings.Contains(got, "s_name_f") || !strings.Contains(got, `".bak"`) {
		t.Errorf("p = %s", got)
	}
}

func TestBuiltinImplode(t *testing.T) {
	src := `<?php
$parts = array("a", "b", "c");
$joined = implode("-", $parts);
`
	res := run(t, src, Options{})
	got := val(t, res, "joined")
	// Structured concat chain over the elements (constant folding merges).
	if !strings.Contains(got, "a") || !strings.Contains(got, "-") {
		t.Errorf("joined = %s", got)
	}
}

func TestBuiltinCountConcrete(t *testing.T) {
	src := `<?php
$n = count(array(1, 2, 3));
`
	res := run(t, src, Options{})
	if got := val(t, res, "n"); got != "3" {
		t.Errorf("n = %s", got)
	}
}

func TestBuiltinArrayMerge(t *testing.T) {
	src := `<?php
$m = array_merge(array('a' => 1), array('b' => 2));
$x = $m['b'];
`
	res := run(t, src, Options{})
	if got := val(t, res, "x"); got != "2" {
		t.Errorf("x = %s", got)
	}
}

func TestBuiltinDirnameBasenameConcrete(t *testing.T) {
	src := `<?php
$d = dirname("/var/www/up/x.php");
$b = basename("/var/www/up/x.php");
`
	res := run(t, src, Options{})
	if got := val(t, res, "d"); got != `"/var/www/up"` {
		t.Errorf("d = %s", got)
	}
	if got := val(t, res, "b"); got != `"x.php"` {
		t.Errorf("b = %s", got)
	}
}

func TestPathinfoArrayForm(t *testing.T) {
	src := `<?php
$info = pathinfo($_FILES['z']['name']);
$base = $info['basename'];
$ext = $info['extension'];
`
	res := run(t, src, Options{})
	if got := val(t, res, "ext"); got != "s_ext_z" {
		t.Errorf("ext = %s", got)
	}
	if got := val(t, res, "base"); !strings.Contains(got, "s_name_z") {
		t.Errorf("base = %s", got)
	}
}

func TestPathinfoConcrete(t *testing.T) {
	src := `<?php
$e = pathinfo("archive.tar.gz", PATHINFO_EXTENSION);
$f = pathinfo("archive.tar.gz", PATHINFO_FILENAME);
`
	res := run(t, src, Options{})
	if got := val(t, res, "e"); got != `"gz"` {
		t.Errorf("e = %s", got)
	}
	if got := val(t, res, "f"); got != `"archive.tar"` {
		t.Errorf("f = %s", got)
	}
}

func TestSuperglobalsShared(t *testing.T) {
	src := `<?php
$a = $_POST['x'];
$b = $_GET['y'];
$c = $_SERVER['REQUEST_URI'];
`
	res := run(t, src, Options{})
	for _, v := range []string{"a", "b", "c"} {
		if res.Envs[0].Get(v) == heapgraph.Null {
			t.Errorf("$%s unbound", v)
		}
	}
}

func TestEchoPrintExitExpr(t *testing.T) {
	src := `<?php
echo "one", 2;
$p = print "three";
`
	res := run(t, src, Options{})
	if got := val(t, res, "p"); got != "1" {
		t.Errorf("p = %s", got)
	}
}

func TestNestedArrayWrite(t *testing.T) {
	src := `<?php
$cfg = array();
$cfg['upload']['dir'] = "/up";
$d = $cfg['upload']['dir'];
`
	res := run(t, src, Options{})
	if got := val(t, res, "d"); got != `"/up"` {
		t.Errorf("d = %s", got)
	}
}

func TestArrayPushStatement(t *testing.T) {
	src := `<?php
$xs = array();
$xs[] = "first";
$xs[] = "second";
$a = $xs[0];
$b = $xs[1];
`
	res := run(t, src, Options{})
	if got := val(t, res, "a"); got != `"first"` {
		t.Errorf("a = %s", got)
	}
	if got := val(t, res, "b"); got != `"second"` {
		t.Errorf("b = %s", got)
	}
}

func TestInterpolatedComplexExpr(t *testing.T) {
	src := `<?php
$p = "pre {$_FILES['k']['name']} post";
`
	res := run(t, src, Options{})
	got := val(t, res, "p")
	if !strings.Contains(got, "s_name_k") || !strings.Contains(got, `"pre "`) {
		t.Errorf("p = %s", got)
	}
}

func TestFunctionRootViaGraph(t *testing.T) {
	// RunRoot on a FuncNode built by the real callgraph.
	src := `<?php
function entry($k) {
	$n = $_FILES[$k]['name'];
	file_put_contents("/srv/" . $n, $_FILES[$k]['tmp_name']);
}
`
	f, errs := phpparser.Parse("t.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	g := callgraph.Build([]*phpast.File{f})
	node := g.Func("entry")
	res := New([]*phpast.File{f}, Options{}).RunRoot(node)
	if len(res.Sinks) != 1 || res.Sinks[0].Sink != "file_put_contents" {
		t.Fatalf("sinks = %+v", res.Sinks)
	}
	// file_put_contents: dst is arg0.
	dst := sexpr.Format(res.Graph.ToSexpr(res.Sinks[0].Dst))
	if !strings.Contains(dst, `"/srv/"`) {
		t.Errorf("dst = %s", dst)
	}
}

func TestAlternativeSyntaxExecution(t *testing.T) {
	src := `<?php if ($c): $x = 1; else: $x = 2; endif; $y = $x;`
	res := run(t, src, Options{})
	if res.Paths != 2 {
		t.Fatalf("paths = %d", res.Paths)
	}
}

func TestGlobalsWriteBack(t *testing.T) {
	src := `<?php
$counter = 1;
function bump() {
	global $counter;
	$counter = $counter + 1;
}
bump();
$r = $counter;
`
	res := run(t, src, Options{})
	if got := val(t, res, "r"); got != "2" {
		t.Errorf("r = %s (global write-back)", got)
	}
}

func TestStrReplaceBuiltinNode(t *testing.T) {
	src := `<?php
$clean = str_replace("..", "", $_FILES['f']['name']);
`
	res := run(t, src, Options{})
	got := val(t, res, "clean")
	if !strings.Contains(got, "str_replace") {
		t.Errorf("clean = %s", got)
	}
}

func TestConstantsFolding(t *testing.T) {
	src := `<?php
$sep = DIRECTORY_SEPARATOR;
$eol = PHP_EOL;
$err = UPLOAD_ERR_OK;
`
	res := run(t, src, Options{})
	if got := val(t, res, "sep"); got != `"/"` {
		t.Errorf("sep = %s", got)
	}
	if got := val(t, res, "err"); got != "0" {
		t.Errorf("err = %s", got)
	}
}

// PHP multi-file form: $_FILES['docs']['name'][0] keeps the structured
// name and taint of a per-index upload family.
func TestMultiFileFormStructure(t *testing.T) {
	src := `<?php
$n0 = $_FILES['docs']['name'][0];
$t0 = $_FILES['docs']['tmp_name'][0];
$n1 = $_FILES['docs']['name'][1];
`
	res := run(t, src, Options{})
	n0 := val(t, res, "n0")
	if !strings.Contains(n0, "s_name_docs_0") || !strings.Contains(n0, "s_ext_docs_0") {
		t.Errorf("n0 = %s", n0)
	}
	if got := val(t, res, "t0"); got != "s_tmp_docs_0" {
		t.Errorf("t0 = %s", got)
	}
	n1 := val(t, res, "n1")
	if n1 == n0 {
		t.Error("distinct indices must give distinct families")
	}
	if !res.Graph.ReachesName(res.Envs[0].Get("t0"), "$_FILES") {
		t.Error("multi-file tmp_name must stay tainted")
	}
}

// Property: the path count of a sequence of independent symbolic branches
// is the product of their arities — the law the corpus's Table III path
// factorizations rely on.
func TestPathCountProductProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		// Derive 1-4 factors in [2,5].
		var factors []int
		for _, b := range raw {
			if len(factors) == 4 {
				break
			}
			factors = append(factors, int(b%4)+2)
		}
		if len(factors) == 0 {
			factors = []int{2}
		}
		var sb strings.Builder
		sb.WriteString("<?php\n")
		want := 1
		for i, f := range factors {
			want *= f
			v := "v" + string(rune('a'+i))
			if f == 2 {
				sb.WriteString("if ($" + v + ") { $x = 1; } else { $x = 0; }\n")
				continue
			}
			sb.WriteString("switch ($" + v + ") {\n")
			for c := 0; c < f-1; c++ {
				sb.WriteString("case " + string(rune('0'+c)) + ":\n$y = " + string(rune('0'+c)) + ";\nbreak;\n")
			}
			sb.WriteString("default:\n$y = -1;\n}\n")
		}
		res := run(t, sb.String(), Options{})
		return res.Paths == want
	}
	if err := quickCheck(f, 60); err != nil {
		t.Error(err)
	}
}

// quickCheck is a tiny wrapper so the property above can use a bounded
// round count without importing testing/quick's default sizing.
func quickCheck(f func([]uint8) bool, rounds int) error {
	seed := []([]uint8){
		{}, {0}, {1}, {2}, {3}, {0, 1}, {1, 2}, {3, 3}, {0, 0, 0},
		{1, 3, 2}, {2, 2, 2, 2}, {3, 2, 1, 0}, {1}, {2, 3},
	}
	for i := 0; i < rounds && i < len(seed); i++ {
		if !f(seed[i]) {
			return fmt.Errorf("property failed for %v", seed[i])
		}
	}
	return nil
}
