package interp

import (
	"strings"

	"repro/internal/heapgraph"
	"repro/internal/ir"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// eval evaluates an expression over the environment set. It returns the
// (possibly grown) environment set — user-function inlining forks paths —
// and one result label per returned environment. This is the paper's
// eval(node, G, ℰ) returning ⟨l_1, …, l_n⟩.
func (in *Interp) eval(e phpast.Expr, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	if e == nil {
		l := in.g.NewConcrete(sexpr.NullVal{}, 0)
		return envs, sameLabel(envs, l)
	}
	switch x := e.(type) {
	case *phpast.IntLit:
		l := in.g.NewConcrete(sexpr.IntVal(x.Value), x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.FloatLit:
		l := in.g.NewConcrete(sexpr.FloatVal(x.Value), x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.StringLit:
		l := in.g.NewConcrete(sexpr.StrVal(x.Value), x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.BoolLit:
		l := in.g.NewConcrete(sexpr.BoolVal(x.Value), x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.NullLit:
		l := in.g.NewConcrete(sexpr.NullVal{}, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.Var:
		return envs, in.evalVar(x, envs)
	case *phpast.InterpString:
		return in.evalInterpString(x, envs)
	case *phpast.ArrayDim:
		return in.evalArrayDim(x, envs)
	case *phpast.ArrayLit:
		return in.evalArrayLit(x, envs)
	case *phpast.Unary:
		return in.evalUnary(x, envs)
	case *phpast.Binary:
		return in.evalBinary(x, envs)
	case *phpast.Assign:
		return in.evalAssign(x, envs)
	case *phpast.IncDec:
		return in.evalIncDec(x, envs)
	case *phpast.Ternary:
		return in.evalTernary(x, envs)
	case *phpast.Cast:
		return in.evalCast(x, envs)
	case *phpast.ErrorSuppress:
		return in.eval(x.X, envs)
	case *phpast.Call:
		return in.evalCall(x, envs)
	case *phpast.MethodCall:
		return in.evalMethodCall(x, envs)
	case *phpast.StaticCall:
		return in.evalStaticCall(x, envs)
	case *phpast.New:
		labels := make([]heapgraph.Label, len(envs))
		for i := range envs {
			obj := in.g.NewArray(x.P.Line)
			labels[i] = obj
		}
		// Run the constructor when the class is known.
		if decl, ok := in.funcs[strings.ToLower(x.Class+"::__construct")]; ok {
			return in.inlineCallWithThis(decl, x.Args, envs, labels, x.P.Line)
		}
		return envs, labels
	case *phpast.PropFetch:
		return in.evalPropFetch(x, envs)
	case *phpast.StaticPropFetch:
		l := in.symbolShared("s_sprop_"+x.Class+"_"+x.Prop, sexpr.Unknown, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.ClassConstFetch:
		l := in.symbolShared("s_cconst_"+x.Class+"_"+x.Const, sexpr.Unknown, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.ConstFetch:
		return envs, sameLabel(envs, in.evalConst(x))
	case *phpast.Isset:
		var args []heapgraph.Label
		for _, v := range x.Vars {
			var ls []heapgraph.Label
			envs, ls = in.eval(v, envs)
			args = ls // keep last; all contribute edges below via ls of final envs
			pushTmp(envs, ls)
		}
		labels := make([]heapgraph.Label, len(envs))
		for i, e := range envs {
			op := in.g.NewOp("isset", sexpr.Bool, x.P.Line)
			// Pop in reverse; attach all parked operands.
			var ops []heapgraph.Label
			for range x.Vars {
				ops = append(ops, e.PopTmp())
			}
			for j := len(ops) - 1; j >= 0; j-- {
				in.g.AddEdge(op, ops[j])
			}
			labels[i] = op
		}
		_ = args
		return envs, labels
	case *phpast.Empty:
		var ls []heapgraph.Label
		envs, ls = in.eval(x.X, envs)
		labels := make([]heapgraph.Label, len(envs))
		for i := range envs {
			op := in.g.NewOp("empty", sexpr.Bool, x.P.Line)
			in.g.AddEdge(op, ls[i])
			labels[i] = op
		}
		return envs, labels
	case *phpast.Exit:
		if x.X != nil {
			envs, _ = in.eval(x.X, envs)
		}
		for _, e := range envs {
			e.Terminated = true
		}
		l := in.g.NewConcrete(sexpr.NullVal{}, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.Print:
		envs, _ = in.eval(x.X, envs)
		l := in.g.NewConcrete(sexpr.IntVal(1), x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.Include:
		return in.evalInclude(x, envs)
	case *phpast.Closure:
		l := in.g.NewSymbol("s_closure", sexpr.Unknown, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.ListExpr:
		l := in.g.NewSymbol("", sexpr.Array, x.P.Line)
		return envs, sameLabel(envs, l)
	case *phpast.Name:
		l := in.symbolShared("s_name_"+x.Value, sexpr.String, x.P.Line)
		return envs, sameLabel(envs, l)
	default:
		l := in.g.NewSymbol("", sexpr.Unknown, e.Pos().Line)
		return envs, sameLabel(envs, l)
	}
}

// evalExpr is a convenience wrapper used by statements that only need the
// updated environments.
func (in *Interp) evalExpr(e phpast.Expr, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	return in.eval(e, envs)
}

func sameLabel(envs heapgraph.EnvSet, l heapgraph.Label) []heapgraph.Label {
	out := make([]heapgraph.Label, len(envs))
	for i := range out {
		out[i] = l
	}
	return out
}

func pushTmp(envs heapgraph.EnvSet, labels []heapgraph.Label) {
	for i, e := range envs {
		e.PushTmp(labels[i])
	}
}

func popTmp(envs heapgraph.EnvSet) []heapgraph.Label {
	out := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		out[i] = e.PopTmp()
	}
	return out
}

// symbolShared memoizes symbols that are global in nature (superglobal
// fields, platform constants) so all paths share one object. Every fill
// advances memoEpoch: block-cache recordings taped across a fill are
// discarded, and replays require the exact recording epoch, so memo state
// observed by a cached span is always bit-identical to record time.
func (in *Interp) symbolShared(name string, t sexpr.Type, line int) heapgraph.Label {
	if l, ok := in.superGlobs[name]; ok {
		return l
	}
	in.memoEpoch++
	l := in.g.NewSymbol(name, t, line)
	in.superGlobs[name] = l
	return l
}

// evalVar implements the paper's eval(x, G, ℰ): bound variables return
// their label per environment; unbound ones get a fresh symbol object
// bound in that environment. Superglobals resolve to their shared
// pre-structured objects.
func (in *Interp) evalVar(x *phpast.Var, envs heapgraph.EnvSet) []heapgraph.Label {
	labels := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		labels[i] = in.varLabel(e, x.Name, x.P.Line)
	}
	return labels
}

// varLabel reads one variable on one path, binding a fresh symbol (or a
// superglobal's shared pre-structured object) when unbound. Shared with
// the VM's OpVar handler.
func (in *Interp) varLabel(e *heapgraph.Env, name string, line int) heapgraph.Label {
	got := e.Get(name)
	if in.rec != nil {
		in.rec.readVar(e, name, got)
	}
	if got != heapgraph.Null {
		return got
	}
	var l heapgraph.Label
	switch name {
	case "_FILES":
		l = in.filesArray(line)
	case "_POST", "_GET", "_REQUEST", "_COOKIE", "_SERVER", "_SESSION", "GLOBALS", "_ENV":
		l = in.symbolShared("$_"+strings.TrimPrefix(name, "_"), sexpr.Array, line)
	default:
		l = in.g.NewSymbol("s_$"+name, sexpr.Unknown, line)
	}
	e.Bind(name, l)
	if in.rec != nil {
		in.rec.bindVar(e, name, l)
	}
	return l
}

func (in *Interp) evalInterpString(x *phpast.InterpString, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	if len(x.Parts) == 0 {
		l := in.g.NewConcrete(sexpr.StrVal(""), x.P.Line)
		return envs, sameLabel(envs, l)
	}
	for _, p := range x.Parts {
		var ls []heapgraph.Label
		envs, ls = in.eval(p, envs)
		pushTmp(envs, ls)
	}
	labels := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		parts := make([]heapgraph.Label, len(x.Parts))
		for j := len(x.Parts) - 1; j >= 0; j-- {
			parts[j] = e.PopTmp()
		}
		cur := parts[0]
		for j := 1; j < len(parts); j++ {
			op := in.g.NewOp(".", sexpr.String, x.P.Line)
			in.g.AddEdge(op, cur)
			in.g.AddEdge(op, parts[j])
			cur = op
		}
		labels[i] = cur
	}
	return envs, labels
}

// evalArrayDim implements the paper's eval(x[e], G, ℰ) including the
// pre-structured $_FILES handling of Section III-B4 (Fig. 6): when the
// array object and a concrete index are known, the element object is
// returned directly; otherwise an array_access operation node combines the
// array and index objects.
func (in *Interp) evalArrayDim(x *phpast.ArrayDim, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var arrLabels []heapgraph.Label
	envs, arrLabels = in.eval(x.Arr, envs)
	pushTmp(envs, arrLabels)
	var idxLabels []heapgraph.Label
	if x.Index != nil {
		envs, idxLabels = in.eval(x.Index, envs)
	} else {
		l := in.g.NewSymbol("", sexpr.Unknown, x.P.Line)
		idxLabels = sameLabel(envs, l)
	}
	arrLabels = popTmp(envs)

	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		labels[i] = in.readElem(arrLabels[i], idxLabels[i], x.P.Line)
	}
	return envs, labels
}

// readElem resolves one array read on one path.
func (in *Interp) readElem(arr, idx heapgraph.Label, line int) heapgraph.Label {
	key, keyConcrete := in.concreteKey(idx)
	// $_FILES['key'] returns the per-key pre-structured array.
	if arr == in.filesArr && in.filesArr != heapgraph.Null {
		if keyConcrete {
			return in.filesField(key, line)
		}
		return in.filesField("*", line)
	}
	// Multi-file upload form: $_FILES['f']['name'][$i] resolves to the
	// matching field of a per-(key, index) pre-structured family, keeping
	// the structured name and taint.
	if mf, ok := in.filesMulti[arr]; ok {
		famKey := mf.key + "_item"
		if keyConcrete {
			famKey = mf.key + "_" + key
		}
		fam := in.filesField(famKey, line)
		if l, ok := in.g.Elem(fam, mf.field); ok {
			return l
		}
	}
	if info := in.g.Array(arr); info != nil {
		if keyConcrete {
			if l, ok := in.g.Elem(arr, key); ok {
				return l
			}
			// Unknown element of a known array: fresh symbol, memoized on
			// the array so repeated reads agree.
			l := in.g.NewSymbol("", sexpr.Unknown, line)
			in.g.SetElem(arr, key, l)
			return l
		}
	}
	// Fallback: array_access operation node (paper Fig. 5).
	op := in.g.NewOp("array_access", sexpr.Unknown, line)
	in.g.AddEdge(op, arr)
	in.g.AddEdge(op, idx)
	return op
}

// concreteKey extracts a concrete array key from an object, canonicalizing
// integers to their decimal spelling as PHP does.
func (in *Interp) concreteKey(l heapgraph.Label) (string, bool) {
	o := in.g.Find(l)
	if o == nil || o.Kind != heapgraph.KindConcrete {
		return "", false
	}
	switch v := o.Val.(type) {
	case sexpr.StrVal:
		return string(v), true
	case sexpr.IntVal:
		return itoa64(int64(v)), true
	case sexpr.BoolVal:
		if v {
			return "1", true
		}
		return "0", true
	}
	return "", false
}

func itoa64(n int64) string { return ir.Itoa64(n) }

func (in *Interp) evalArrayLit(x *phpast.ArrayLit, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	// Evaluate all keys and values first (parking on the operand stack),
	// then build one array object per path.
	for _, it := range x.Items {
		if it.Key != nil {
			var kls []heapgraph.Label
			envs, kls = in.eval(it.Key, envs)
			pushTmp(envs, kls)
		}
		var vls []heapgraph.Label
		envs, vls = in.eval(it.Value, envs)
		pushTmp(envs, vls)
	}
	labels := make([]heapgraph.Label, len(envs))
	for i, e := range envs {
		// Pop in reverse order.
		type kv struct {
			key    heapgraph.Label
			hasKey bool
			val    heapgraph.Label
		}
		items := make([]kv, len(x.Items))
		for j := len(x.Items) - 1; j >= 0; j-- {
			items[j].val = e.PopTmp()
			if x.Items[j].Key != nil {
				items[j].key = e.PopTmp()
				items[j].hasKey = true
			}
		}
		arr := in.g.NewArray(x.P.Line)
		for _, it := range items {
			if it.hasKey {
				if k, ok := in.concreteKey(it.key); ok {
					in.g.SetElem(arr, k, it.val)
					continue
				}
			}
			in.g.PushElem(arr, it.val)
		}
		labels[i] = arr
	}
	return envs, labels
}

func (in *Interp) evalUnary(x *phpast.Unary, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var ls []heapgraph.Label
	envs, ls = in.eval(x.X, envs)
	shared := map[heapgraph.Label]heapgraph.Label{}
	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		if folded, ok := in.foldUnary(x.Op, ls[i], x.P.Line); ok {
			labels[i] = folded
			continue
		}
		if l, ok := shared[ls[i]]; ok {
			labels[i] = l
			continue
		}
		t := sexpr.Bool
		if x.Op == "-" || x.Op == "+" || x.Op == "~" {
			t = sexpr.Int
		}
		op := in.g.NewOp(x.Op, t, x.P.Line)
		in.g.AddEdge(op, ls[i])
		shared[ls[i]] = op
		labels[i] = op
	}
	return envs, labels
}

func (in *Interp) foldUnary(op string, l heapgraph.Label, line int) (heapgraph.Label, bool) {
	o := in.g.Find(l)
	if o == nil || o.Kind != heapgraph.KindConcrete {
		return heapgraph.Null, false
	}
	if op == "+" {
		return l, true
	}
	// Shared with the compiler's constant-fold pass (ir.FoldUnary), so a
	// compile-time fold decision is identical to this run-time one.
	if v, ok := ir.FoldUnary(op, o.Val); ok {
		return in.g.NewConcrete(v, line), true
	}
	return heapgraph.Null, false
}

// evalBinary implements the paper's eval(e1 op e2, G, ℰ): both operands
// are evaluated, then one operation node per path combines them, with edge
// order preserving left/right. Fully concrete operands fold to concrete
// results so constant control flow does not fork paths.
func (in *Interp) evalBinary(x *phpast.Binary, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var lls []heapgraph.Label
	envs, lls = in.eval(x.L, envs)
	pushTmp(envs, lls)
	var rls []heapgraph.Label
	envs, rls = in.eval(x.R, envs)
	lls = popTmp(envs)

	// Share operation nodes across paths whose operands coincide — the
	// paper's design point: "many objects can be shared by different
	// environments, thereby reducing the memory consumption".
	type operands struct{ l, r heapgraph.Label }
	shared := map[operands]heapgraph.Label{}
	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		key := operands{lls[i], rls[i]}
		if l, ok := shared[key]; ok {
			labels[i] = l
			continue
		}
		if folded, ok := in.foldBinary(x.Op, lls[i], rls[i], x.P.Line); ok {
			shared[key] = folded
			labels[i] = folded
			continue
		}
		op := in.g.NewOp(x.Op, binaryResultType(x.Op), x.P.Line)
		in.g.AddEdge(op, lls[i])
		in.g.AddEdge(op, rls[i])
		shared[key] = op
		labels[i] = op
	}
	return envs, labels
}

func binaryResultType(op string) sexpr.Type {
	switch op {
	case ".":
		return sexpr.String
	case "+", "-", "*", "/", "%", "**", "<<", ">>", "&", "|", "^":
		return sexpr.Int
	case "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||", "xor", "instanceof":
		return sexpr.Bool
	case "<=>":
		return sexpr.Int
	default: // "??" and friends
		return sexpr.Unknown
	}
}

// foldBinary computes concrete results for concrete operands, following
// PHP semantics for the operators the corpus uses.
func (in *Interp) foldBinary(op string, l, r heapgraph.Label, line int) (heapgraph.Label, bool) {
	lo, ro := in.g.Find(l), in.g.Find(r)
	if lo == nil || ro == nil || lo.Kind != heapgraph.KindConcrete || ro.Kind != heapgraph.KindConcrete {
		return heapgraph.Null, false
	}
	// "??" yields an existing operand label (no allocation), so it stays
	// here; everything else shares ir.FoldBinary with the compiler's
	// constant-fold pass, keeping compile-time and run-time decisions
	// identical. The &&/|| truthiness in ir.FoldBinary matches
	// concreteBool's KindConcrete arm, which is the only arm reachable
	// under the concrete-operand guard above.
	if op == "??" {
		if _, isNull := lo.Val.(sexpr.NullVal); isNull {
			return r, true
		}
		return l, true
	}
	if v, ok := ir.FoldBinary(op, lo.Val, ro.Val); ok {
		return in.g.NewConcrete(v, line), true
	}
	return heapgraph.Null, false
}

func concreteString(v sexpr.Expr) (string, bool) { return ir.ConcreteString(v) }

func concreteInt(v sexpr.Expr) (int64, bool) { return ir.ConcreteInt(v) }

// concreteEqual compares concrete values; strict selects === semantics.
// The bool result is only valid when ok is true.
func concreteEqual(a, b sexpr.Expr, strict bool) (bool, bool) {
	return ir.ConcreteEqual(a, b, strict)
}

func (in *Interp) evalIncDec(x *phpast.IncDec, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var olds []heapgraph.Label
	envs, olds = in.eval(x.X, envs)
	one := in.g.NewConcrete(sexpr.IntVal(1), x.P.Line)
	news := make([]heapgraph.Label, len(envs))
	for i := range envs {
		opName := "+"
		if x.Op == "--" {
			opName = "-"
		}
		if folded, ok := in.foldBinary(opName, olds[i], one, x.P.Line); ok {
			news[i] = folded
			continue
		}
		op := in.g.NewOp(opName, sexpr.Int, x.P.Line)
		in.g.AddEdge(op, olds[i])
		in.g.AddEdge(op, one)
		news[i] = op
	}
	envs = in.assignTo(x.X, envs, news)
	if x.Pre {
		return envs, news
	}
	return envs, olds
}

// evalTernary builds an ite operation node rather than forking paths (the
// fork points of the interpreter are statements; expression-level choice is
// carried symbolically and discharged by the solver).
func (in *Interp) evalTernary(x *phpast.Ternary, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var cls []heapgraph.Label
	envs, cls = in.eval(x.Cond, envs)
	pushTmp(envs, cls)
	var tls []heapgraph.Label
	if x.Then != nil {
		envs, tls = in.eval(x.Then, envs)
	} else {
		tls = popTmp(envs) // short form: cond ?: else reuses the condition value
		pushTmp(envs, tls)
	}
	pushTmp(envs, tls)
	var els []heapgraph.Label
	envs, els = in.eval(x.Else, envs)
	tls = popTmp(envs)
	cls = popTmp(envs)

	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		if b, ok := in.concreteBool(cls[i]); ok {
			if b {
				labels[i] = tls[i]
			} else {
				labels[i] = els[i]
			}
			continue
		}
		to := in.g.Find(tls[i])
		t := sexpr.Unknown
		if to != nil {
			t = to.Type
		}
		op := in.g.NewOp("ite", t, x.P.Line)
		in.g.AddEdge(op, cls[i])
		in.g.AddEdge(op, tls[i])
		in.g.AddEdge(op, els[i])
		labels[i] = op
	}
	return envs, labels
}

func (in *Interp) evalCast(x *phpast.Cast, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var ls []heapgraph.Label
	envs, ls = in.eval(x.X, envs)
	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		o := in.g.Find(ls[i])
		if o != nil && o.Kind == heapgraph.KindConcrete {
			// Shared with the compiler's fold pass; the "bool" case matches
			// concreteBool's KindConcrete arm, the only one reachable here.
			if v, ok := ir.FoldCast(x.Type, o.Val); ok {
				labels[i] = in.g.NewConcrete(v, x.P.Line)
				continue
			}
		}
		t := map[string]sexpr.Type{
			"int": sexpr.Int, "float": sexpr.Float, "string": sexpr.String,
			"bool": sexpr.Bool, "array": sexpr.Array,
		}[x.Type]
		op := in.g.NewOp("cast_"+x.Type, t, x.P.Line)
		in.g.AddEdge(op, ls[i])
		labels[i] = op
	}
	return envs, labels
}

func (in *Interp) evalConst(x *phpast.ConstFetch) heapgraph.Label {
	return in.constLabel(x.Name, x.P.Line)
}

// constLabel resolves a PHP constant by name. Shared with the VM's
// OpConstFetch handler.
func (in *Interp) constLabel(name string, line int) heapgraph.Label {
	switch strings.ToUpper(name) {
	case "PATHINFO_EXTENSION":
		return in.symbolSharedConcrete("PATHINFO_EXTENSION", sexpr.IntVal(4), line)
	case "PATHINFO_BASENAME":
		return in.symbolSharedConcrete("PATHINFO_BASENAME", sexpr.IntVal(2), line)
	case "PATHINFO_DIRNAME":
		return in.symbolSharedConcrete("PATHINFO_DIRNAME", sexpr.IntVal(1), line)
	case "PATHINFO_FILENAME":
		return in.symbolSharedConcrete("PATHINFO_FILENAME", sexpr.IntVal(8), line)
	case "PHP_EOL":
		return in.symbolSharedConcrete("PHP_EOL", sexpr.StrVal("\n"), line)
	case "DIRECTORY_SEPARATOR":
		return in.symbolSharedConcrete("DIRECTORY_SEPARATOR", sexpr.StrVal("/"), line)
	case "UPLOAD_ERR_OK":
		return in.symbolSharedConcrete("UPLOAD_ERR_OK", sexpr.IntVal(0), line)
	case "__FILE__":
		return in.g.NewConcrete(sexpr.StrVal(in.curFile), line)
	case "__DIR__":
		return in.g.NewConcrete(sexpr.StrVal(dirOf(in.curFile)), line)
	case "ABSPATH", "WP_CONTENT_DIR", "WP_PLUGIN_DIR":
		return in.symbolShared("s_const_"+name, sexpr.String, line)
	default:
		return in.symbolShared("s_const_"+name, sexpr.Unknown, line)
	}
}

func (in *Interp) symbolSharedConcrete(name string, v sexpr.Expr, line int) heapgraph.Label {
	if l, ok := in.superGlobs["const:"+name]; ok {
		return l
	}
	in.memoEpoch++
	l := in.g.NewConcrete(v, line)
	in.superGlobs["const:"+name] = l
	return l
}

func dirOf(p string) string {
	if i := strings.LastIndexByte(p, '/'); i > 0 {
		return p[:i]
	}
	return "."
}

func (in *Interp) evalPropFetch(x *phpast.PropFetch, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	var ols []heapgraph.Label
	envs, ols = in.eval(x.Obj, envs)
	labels := make([]heapgraph.Label, len(envs))
	for i := range envs {
		if info := in.g.Array(ols[i]); info != nil {
			if l, ok := in.g.Elem(ols[i], x.Prop); ok {
				labels[i] = l
				continue
			}
			l := in.g.NewSymbol("", sexpr.Unknown, x.P.Line)
			in.g.SetElem(ols[i], x.Prop, l)
			labels[i] = l
			continue
		}
		op := in.g.NewOp("prop_fetch", sexpr.Unknown, x.P.Line)
		key := in.g.NewConcrete(sexpr.StrVal(x.Prop), x.P.Line)
		in.g.AddEdge(op, ols[i])
		in.g.AddEdge(op, key)
		labels[i] = op
	}
	return envs, labels
}

func (in *Interp) evalInclude(x *phpast.Include, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	envs, _ = in.eval(x.X, envs)
	target := in.resolveIncludeFile(x)
	done := in.g.NewConcrete(sexpr.BoolVal(true), x.P.Line)
	if target == nil {
		return envs, sameLabel(envs, done)
	}
	for _, f := range in.fileStack {
		if f == target.Name {
			return envs, sameLabel(envs, done) // include cycle
		}
	}
	in.fileStack = append(in.fileStack, target.Name)
	prev := in.curFile
	in.curFile = target.Name
	envs = in.execStmts(topLevel(target.Stmts), envs)
	in.curFile = prev
	in.fileStack = in.fileStack[:len(in.fileStack)-1]
	return envs, sameLabel(envs, done)
}

func (in *Interp) resolveIncludeFile(x *phpast.Include) *phpast.File {
	lit := includeLit(x.X)
	if lit == "" {
		return nil
	}
	if f, ok := in.files[lit]; ok {
		return f
	}
	rel := dirOf(in.curFile) + "/" + strings.TrimPrefix(lit, "/")
	if f, ok := in.files[rel]; ok {
		return f
	}
	base := baseOf(lit)
	var match *phpast.File
	for name, f := range in.files {
		if baseOf(name) == base {
			if match != nil {
				return nil
			}
			match = f
		}
	}
	return match
}

func includeLit(e phpast.Expr) string {
	switch x := e.(type) {
	case *phpast.StringLit:
		return x.Value
	case *phpast.Binary:
		if x.Op == "." {
			if lit := includeLit(x.R); lit != "" {
				return strings.TrimPrefix(lit, "/")
			}
		}
	}
	return ""
}

func baseOf(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// assignTo writes a value into an assignment target on every path.
func (in *Interp) assignTo(target phpast.Expr, envs heapgraph.EnvSet, vals []heapgraph.Label) heapgraph.EnvSet {
	switch t := target.(type) {
	case *phpast.Var:
		for i, e := range envs {
			e.Bind(t.Name, vals[i])
		}
		return envs
	case *phpast.ArrayDim:
		return in.assignToDim(t, envs, vals)
	case *phpast.PropFetch:
		pushTmp(envs, vals)
		var ols []heapgraph.Label
		envs, ols = in.eval(t.Obj, envs)
		vals = popTmp(envs)
		for i := range envs {
			if in.g.Array(ols[i]) != nil {
				in.g.SetElem(ols[i], t.Prop, vals[i])
			}
		}
		return envs
	case *phpast.ListExpr:
		for j, item := range t.Items {
			if item == nil {
				continue
			}
			sub := make([]heapgraph.Label, len(envs))
			for i := range envs {
				sub[i] = in.readElem(vals[i], in.g.NewConcrete(sexpr.IntVal(int64(j)), t.P.Line), t.P.Line)
			}
			envs = in.assignTo(item, envs, sub)
		}
		return envs
	case *phpast.StaticPropFetch, *phpast.ConstFetch:
		return envs // constants/statics: no tracked state
	default:
		return envs
	}
}

// assignToDim implements array-element assignment with copy-on-write: PHP
// arrays are value types, so forked paths must not observe each other's
// writes through a shared array object.
func (in *Interp) assignToDim(t *phpast.ArrayDim, envs heapgraph.EnvSet, vals []heapgraph.Label) heapgraph.EnvSet {
	pushTmp(envs, vals)
	var arrs []heapgraph.Label
	envs, arrs = in.eval(t.Arr, envs)
	pushTmp(envs, arrs)
	var idxs []heapgraph.Label
	if t.Index != nil {
		envs, idxs = in.eval(t.Index, envs)
	} else {
		idxs = sameLabel(envs, heapgraph.Null)
	}
	arrs = popTmp(envs)
	vals = popTmp(envs)

	newArrs := make([]heapgraph.Label, len(envs))
	for i := range envs {
		// Copy-on-write clone of the base array (or a fresh array when the
		// base is not a known array object).
		na := in.g.NewArray(t.P.Line)
		if info := in.g.Array(arrs[i]); info != nil {
			for _, k := range info.Keys {
				in.g.SetElem(na, k, info.Elems[k])
			}
		}
		if t.Index == nil {
			in.g.PushElem(na, vals[i])
		} else if k, ok := in.concreteKey(idxs[i]); ok {
			in.g.SetElem(na, k, vals[i])
		} else {
			in.g.PushElem(na, vals[i])
		}
		newArrs[i] = na
	}
	// Rebind the base (recursively for nested dims).
	return in.assignTo(t.Arr, envs, newArrs)
}

func (in *Interp) evalAssign(x *phpast.Assign, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	if x.Op == "" {
		var vals []heapgraph.Label
		envs, vals = in.eval(x.Value, envs)
		envs = in.assignTo(x.Target, envs, vals)
		return envs, vals
	}
	// Compound assignment: target = target op value.
	bin := &phpast.Binary{P: x.P, Op: x.Op, L: x.Target, R: x.Value}
	var vals []heapgraph.Label
	envs, vals = in.evalBinary(bin, envs)
	envs = in.assignTo(x.Target, envs, vals)
	return envs, vals
}
