package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/ir"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// vmRun dispatches compiled ir bytecode over the same heap graph,
// environments and statistics as the tree walker. Expression instructions
// maintain a value register of one label per live path; sub-expression
// results that must survive a fork are parked on the per-environment
// operand stack (exactly the tree walker's pushTmp/popTmp discipline, so
// labels stay aligned when environments clone). Control-flow instructions
// delegate to the shared fork/loop/try core in controlflow.go with
// bytecode body runners, which makes the two engines byte-for-byte
// equivalent on the heap graph they build.
//
// Register slices come from a small rotating buffer pool instead of the
// heap: the compiler emits postorder code, so a register value is always
// consumed by the next instruction that reads it before more than a
// handful of further register writes happen, and ops that recurse into
// nested code (calls, blocks, loops) either consume the register first
// (branch/loop conditions, foreach subjects) or replace it with a fresh
// heap slice on return. Nothing pool-backed survives into recorded sinks
// or inlined frames — those keep private heap allocations.
type vmRun struct {
	in   *Interp
	prog *ir.Program

	// instrs / spans mirror Stats.IRInstructionsExecuted and
	// Stats.VMDispatchLoops.
	instrs int64
	spans  int64

	// bufs is the rotating register pool. Eight slots comfortably exceed
	// the four register slices an instruction can hold live at once
	// (ternary: cond, then, else, result).
	bufs [8][]heapgraph.Label
	bufi int

	// Per-instruction scratch, reused across dispatches.
	opsBuf   []heapgraph.Label
	argsBuf  []heapgraph.Label
	partsBuf []heapgraph.Label
	itemsBuf []vmArrayItem

	// sharedUn / sharedBin are the per-instruction operand→result sharing
	// maps of OpUnary/OpBinary, reused (cleared) across dispatches and
	// skipped entirely on single-path sets.
	sharedUn  map[heapgraph.Label]heapgraph.Label
	sharedBin map[vmOperands]heapgraph.Label
}

type vmArrayItem struct {
	key    heapgraph.Label
	hasKey bool
	val    heapgraph.Label
}

type vmOperands struct{ l, r heapgraph.Label }

var castTypes = map[string]sexpr.Type{
	"int": sexpr.Int, "float": sexpr.Float, "string": sexpr.String,
	"bool": sexpr.Bool, "array": sexpr.Array,
}

// buf returns the next pool slice, grown to n labels. Contents are
// overwritten by the caller.
func (v *vmRun) buf(n int) []heapgraph.Label {
	i := v.bufi & 7
	v.bufi++
	b := v.bufs[i]
	if cap(b) < n {
		b = make([]heapgraph.Label, n)
		v.bufs[i] = b
	}
	return b[:n]
}

// fill is sameLabel into a pool buffer.
func (v *vmRun) fill(envs heapgraph.EnvSet, l heapgraph.Label) []heapgraph.Label {
	out := v.buf(len(envs))
	for i := range out {
		out[i] = l
	}
	return out
}

// popT is popTmp into a pool buffer.
func (v *vmRun) popT(envs heapgraph.EnvSet) []heapgraph.Label {
	out := v.buf(len(envs))
	for i, e := range envs {
		out[i] = e.PopTmp()
	}
	return out
}

// popArgsInto pops n parked argument labels off one path's operand stack
// into the shared argument scratch (callers must not retain the slice —
// recordSink and inlineFrame use popArgs instead).
func (v *vmRun) popArgsInto(e *heapgraph.Env, n int) []heapgraph.Label {
	if cap(v.argsBuf) < n {
		v.argsBuf = make([]heapgraph.Label, n)
	}
	args := v.argsBuf[:n]
	for j := n - 1; j >= 0; j-- {
		args[j] = e.PopTmp()
	}
	return args
}

// runCode executes one compiled statement list with the tree walker's
// per-statement budget checkpoint and suspended-path partition.
func (v *vmRun) runCode(c *ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	in := v.in
	for si := range c.Spans {
		if in.opts.Summaries != nil {
			envs = in.mergeBoundary(envs)
		}
		if in.overBudget(envs) {
			return envs
		}
		suspended := 0
		for _, e := range envs {
			if e.Suspended() {
				suspended++
			}
		}
		in.stats.PathsHeld += int64(suspended)
		if suspended == len(envs) {
			// Also covers an empty env set: execStmts stops after its
			// first checkpoint when no path is live, so the VM must not
			// keep charging budget checks for the remaining spans.
			return envs
		}
		if suspended == 0 {
			envs = v.runSpan(c, si, envs)
			continue
		}
		live := make(heapgraph.EnvSet, 0, len(envs)-suspended)
		held := make(heapgraph.EnvSet, 0, suspended)
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		live = v.runSpan(c, si, live)
		envs = append(live, held...)
	}
	return envs
}

// runOne executes a single-statement Code without a budget checkpoint
// (execStmt semantics — used for else branches so elseif chains do not
// double-count checkpoints).
func (v *vmRun) runOne(c *ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	return v.runSpan(c, 0, envs)
}

// runSpan dispatches one statement span through the block-fact cache:
// cacheable spans whose live-in facts validate against a stored recording
// replay its taped effects (counting instructions and dispatch loops
// exactly as an execution would); cacheable misses execute under a
// recorder and store the tape. Everything else just executes.
func (v *vmRun) runSpan(c *ir.Code, si int, envs heapgraph.EnvSet) heapgraph.EnvSet {
	in := v.in
	sp := c.Spans[si]
	if in.blockCache != nil && c.Cacheable != nil && c.Cacheable[si] {
		if r := in.blockCache.lookup(in, c, si, envs); r != nil {
			r.replay(in, envs)
			v.spans++
			v.instrs += int64(sp.N)
			in.stats.BlockCacheHits++
			return envs
		}
		in.stats.BlockCacheMisses++
		if in.blockCache.shouldRecord(c, si) {
			br := newBlockRecorder(in, envs)
			in.rec = br
			in.g.SetRecorder(br)
			envs, _ = v.exec(c, sp, envs)
			in.g.SetRecorder(nil)
			in.rec = nil
			br.finish(c, si)
			return envs
		}
	}
	envs, _ = v.exec(c, sp, envs)
	return envs
}

// runExpr executes an expression Code (no spans) and returns the value
// register.
func (v *vmRun) runExpr(c *ir.Code, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	return v.exec(c, ir.Span{Off: 0, N: int32(len(c.Instrs))}, envs)
}

// loopPost mirrors Interp.execLoopPost over compiled post-expression
// codes.
func (v *vmRun) loopPost(post []*ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	if len(post) == 0 {
		return envs
	}
	clearContinues(envs)
	var live, held heapgraph.EnvSet
	for _, e := range envs {
		if e.Suspended() {
			held = append(held, e)
		} else {
			live = append(live, e)
		}
	}
	for _, p := range post {
		if len(live) == 0 {
			break
		}
		live, _ = v.runExpr(p, live)
	}
	return append(live, held...)
}

// popArgs pops n parked argument labels off one path's operand stack,
// restoring source order. Heap-allocated: used where the callee may
// retain the slice (recordSink, inlineFrame's argument matrix).
func popArgs(e *heapgraph.Env, n int) []heapgraph.Label {
	args := make([]heapgraph.Label, n)
	for j := n - 1; j >= 0; j-- {
		args[j] = e.PopTmp()
	}
	return args
}

// exec dispatches one statement span. The returned label slice is the
// value register after the last instruction (the statement's expression
// value, if any).
func (v *vmRun) exec(c *ir.Code, sp ir.Span, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	in, g, p := v.in, v.in.g, v.prog
	v.spans++
	v.instrs += int64(sp.N)
	var vals []heapgraph.Label
	end := int(sp.Off + sp.N)
	for pc := int(sp.Off); pc < end; pc++ {
		ins := &c.Instrs[pc]
		line := int(ins.Line)
		switch ins.Op {
		case ir.OpConst:
			vals = v.fill(envs, g.NewConcrete(p.Consts[ins.A], line))

		case ir.OpFoldedConst:
			// Replay of a constant-folded opcode run: every allocation the
			// unfolded code would have performed (operand constants and the
			// folded results) happens here, same values, lines, and order,
			// so the heap graph is byte-identical — only the dispatching,
			// parking, and fold re-derivation are gone. A per-env-result
			// fold (unary/cast, which the evaluator folds before any
			// sharing map) allocates its final step once per path.
			d := &p.Folds[ins.A]
			steps := d.Steps
			if d.PerEnvResult {
				for si := 0; si < len(steps)-1; si++ {
					st := steps[si]
					g.NewConcrete(p.Consts[st.Const], int(st.Line))
				}
				last := steps[len(steps)-1]
				cv := p.Consts[last.Const]
				cline := int(last.Line)
				vals = v.buf(len(envs))
				for i := range envs {
					vals[i] = g.NewConcrete(cv, cline)
				}
			} else {
				var l heapgraph.Label
				for _, st := range steps {
					l = g.NewConcrete(p.Consts[st.Const], int(st.Line))
				}
				vals = v.fill(envs, l)
			}

		case ir.OpVar:
			name := p.Strings[ins.A]
			vals = v.buf(len(envs))
			for i, e := range envs {
				vals[i] = in.varLabel(e, name, line)
			}

		case ir.OpPark:
			pushTmp(envs, vals)

		case ir.OpPeekTmp:
			vals = v.buf(len(envs))
			for i, e := range envs {
				vals[i] = e.Tmp[len(e.Tmp)-1]
			}

		case ir.OpFreshSym:
			vals = v.fill(envs, g.NewSymbol(p.Strings[ins.A], sexpr.Type(ins.B), line))

		case ir.OpSharedSym:
			vals = v.fill(envs, in.symbolShared(p.Strings[ins.A], sexpr.Type(ins.B), line))

		case ir.OpConstFetch:
			vals = v.fill(envs, in.constLabel(p.Strings[ins.A], line))

		case ir.OpInterpString:
			n := int(ins.A)
			if cap(v.partsBuf) < n {
				v.partsBuf = make([]heapgraph.Label, n)
			}
			vals = v.buf(len(envs))
			for i, e := range envs {
				parts := v.partsBuf[:n]
				for j := n - 1; j >= 0; j-- {
					parts[j] = e.PopTmp()
				}
				cur := parts[0]
				for j := 1; j < n; j++ {
					op := g.NewOp(".", sexpr.String, line)
					g.AddEdge(op, cur)
					g.AddEdge(op, parts[j])
					cur = op
				}
				vals[i] = cur
			}

		case ir.OpIndex:
			arrs := v.popT(envs)
			idxs := vals
			vals = v.buf(len(envs))
			for i := range envs {
				vals[i] = in.readElem(arrs[i], idxs[i], line)
			}

		case ir.OpArrayLit:
			desc := p.ArrayDescs[ins.A]
			if cap(v.itemsBuf) < len(desc) {
				v.itemsBuf = make([]vmArrayItem, len(desc))
			}
			vals = v.buf(len(envs))
			for i, e := range envs {
				items := v.itemsBuf[:len(desc)]
				for j := len(desc) - 1; j >= 0; j-- {
					items[j].val = e.PopTmp()
					items[j].hasKey = false
					if desc[j] {
						items[j].key = e.PopTmp()
						items[j].hasKey = true
					}
				}
				arr := g.NewArray(line)
				for k := range items {
					it := &items[k]
					if it.hasKey {
						if key, ok := in.concreteKey(it.key); ok {
							g.SetElem(arr, key, it.val)
							continue
						}
					}
					g.PushElem(arr, it.val)
				}
				vals[i] = arr
			}

		case ir.OpUnary:
			op := p.Strings[ins.A]
			ls := vals
			vals = v.buf(len(envs))
			t := sexpr.Bool
			if op == "-" || op == "+" || op == "~" {
				t = sexpr.Int
			}
			if len(envs) == 1 {
				if folded, ok := in.foldUnary(op, ls[0], line); ok {
					vals[0] = folded
				} else {
					o := g.NewOp(op, t, line)
					g.AddEdge(o, ls[0])
					vals[0] = o
				}
				break
			}
			if v.sharedUn == nil {
				v.sharedUn = map[heapgraph.Label]heapgraph.Label{}
			} else {
				clear(v.sharedUn)
			}
			shared := v.sharedUn
			for i := range envs {
				if folded, ok := in.foldUnary(op, ls[i], line); ok {
					vals[i] = folded
					continue
				}
				if l, ok := shared[ls[i]]; ok {
					vals[i] = l
					continue
				}
				o := g.NewOp(op, t, line)
				g.AddEdge(o, ls[i])
				shared[ls[i]] = o
				vals[i] = o
			}

		case ir.OpBinary:
			op := p.Strings[ins.A]
			lls := v.popT(envs)
			rls := vals
			vals = v.buf(len(envs))
			if len(envs) == 1 {
				if folded, ok := in.foldBinary(op, lls[0], rls[0], line); ok {
					vals[0] = folded
				} else {
					o := g.NewOp(op, binaryResultType(op), line)
					g.AddEdge(o, lls[0])
					g.AddEdge(o, rls[0])
					vals[0] = o
				}
				break
			}
			if v.sharedBin == nil {
				v.sharedBin = map[vmOperands]heapgraph.Label{}
			} else {
				clear(v.sharedBin)
			}
			shared := v.sharedBin
			for i := range envs {
				key := vmOperands{lls[i], rls[i]}
				if l, ok := shared[key]; ok {
					vals[i] = l
					continue
				}
				if folded, ok := in.foldBinary(op, lls[i], rls[i], line); ok {
					shared[key] = folded
					vals[i] = folded
					continue
				}
				o := g.NewOp(op, binaryResultType(op), line)
				g.AddEdge(o, lls[i])
				g.AddEdge(o, rls[i])
				shared[key] = o
				vals[i] = o
			}

		case ir.OpIsset:
			n := int(ins.A)
			if cap(v.opsBuf) < n {
				v.opsBuf = make([]heapgraph.Label, n)
			}
			vals = v.buf(len(envs))
			for i, e := range envs {
				op := g.NewOp("isset", sexpr.Bool, line)
				ops := v.opsBuf[:n]
				for j := 0; j < n; j++ {
					ops[j] = e.PopTmp()
				}
				for j := n - 1; j >= 0; j-- {
					g.AddEdge(op, ops[j])
				}
				vals[i] = op
			}

		case ir.OpEmpty:
			ls := vals
			vals = v.buf(len(envs))
			for i := range envs {
				op := g.NewOp("empty", sexpr.Bool, line)
				g.AddEdge(op, ls[i])
				vals[i] = op
			}

		case ir.OpTernary:
			els := vals
			tls := v.popT(envs)
			cls := v.popT(envs)
			vals = v.buf(len(envs))
			for i := range envs {
				if b, ok := in.concreteBool(cls[i]); ok {
					if b {
						vals[i] = tls[i]
					} else {
						vals[i] = els[i]
					}
					continue
				}
				to := g.Find(tls[i])
				t := sexpr.Unknown
				if to != nil {
					t = to.Type
				}
				op := g.NewOp("ite", t, line)
				g.AddEdge(op, cls[i])
				g.AddEdge(op, tls[i])
				g.AddEdge(op, els[i])
				vals[i] = op
			}

		case ir.OpCast:
			castType := p.Strings[ins.A]
			ls := vals
			vals = v.buf(len(envs))
			for i := range envs {
				o := g.Find(ls[i])
				if o != nil && o.Kind == heapgraph.KindConcrete {
					if cv, ok := ir.FoldCast(castType, o.Val); ok {
						vals[i] = g.NewConcrete(cv, line)
						continue
					}
				}
				op := g.NewOp("cast_"+castType, castTypes[castType], line)
				g.AddEdge(op, ls[i])
				vals[i] = op
			}

		case ir.OpBindVar:
			name := p.Strings[ins.A]
			for i, e := range envs {
				e.Bind(name, vals[i])
				if in.rec != nil {
					in.rec.bindVar(e, name, vals[i])
				}
			}

		case ir.OpAssignTo:
			// The register is left as the assigned values (assignments are
			// expressions); like evalAssign, it is not re-aligned if the
			// target's own evaluation forks.
			envs = in.assignTo(p.Exprs[ins.A], envs, vals)

		case ir.OpIncDecVar:
			name := p.Strings[ins.A]
			olds := vals
			one := g.NewConcrete(sexpr.IntVal(1), line)
			news := v.buf(len(envs))
			opName := "+"
			if ins.B&1 != 0 {
				opName = "-"
			}
			for i := range envs {
				if folded, ok := in.foldBinary(opName, olds[i], one, line); ok {
					news[i] = folded
					continue
				}
				op := g.NewOp(opName, sexpr.Int, line)
				g.AddEdge(op, olds[i])
				g.AddEdge(op, one)
				news[i] = op
			}
			for i, e := range envs {
				e.Bind(name, news[i])
				if in.rec != nil {
					in.rec.bindVar(e, name, news[i])
				}
			}
			if ins.B&2 != 0 {
				vals = news
			} else {
				vals = olds
			}

		case ir.OpPropFetch:
			prop := p.Strings[ins.A]
			ols := vals
			vals = v.buf(len(envs))
			for i := range envs {
				if info := g.Array(ols[i]); info != nil {
					if l, ok := g.Elem(ols[i], prop); ok {
						vals[i] = l
						continue
					}
					l := g.NewSymbol("", sexpr.Unknown, line)
					g.SetElem(ols[i], prop, l)
					vals[i] = l
					continue
				}
				op := g.NewOp("prop_fetch", sexpr.Unknown, line)
				key := g.NewConcrete(sexpr.StrVal(prop), line)
				g.AddEdge(op, ols[i])
				g.AddEdge(op, key)
				vals[i] = op
			}

		case ir.OpCallDynamic:
			n := int(ins.B)
			vals = v.buf(len(envs))
			for i, e := range envs {
				args := v.popArgsInto(e, n)
				fn := g.NewFunc("call_dynamic", sexpr.Unknown, line)
				for _, a := range args {
					g.AddEdge(fn, a)
				}
				vals[i] = fn
			}

		case ir.OpCallSink:
			name := p.Strings[ins.A]
			n := int(ins.B)
			vals = v.buf(len(envs))
			for i, e := range envs {
				vals[i] = in.recordSink(name, popArgs(e, n), e, line)
			}

		case ir.OpCallBuiltin:
			name := p.Strings[ins.A]
			n := int(ins.B)
			vals = v.buf(len(envs))
			for i, e := range envs {
				vals[i] = in.builtinCall(name, v.popArgsInto(e, n), e, line)
			}

		case ir.OpCallUser:
			f := p.Funcs[ins.A]
			n := int(ins.B)
			argMatrix := make([][]heapgraph.Label, len(envs))
			for i, e := range envs {
				argMatrix[i] = popArgs(e, n)
			}
			envs, vals = in.inlineFrame(f.LName, f.Params, f.DeclLine, f.EndLine, line, argMatrix, envs, heapgraph.Null,
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(f.Body, es) })

		case ir.OpInclude:
			x := p.Exprs[ins.A].(*phpast.Include)
			target := in.resolveIncludeFile(x)
			done := g.NewConcrete(sexpr.BoolVal(true), line)
			run := target != nil
			if run {
				for _, f := range in.fileStack {
					if f == target.Name {
						run = false // include cycle
						break
					}
				}
			}
			if run {
				in.fileStack = append(in.fileStack, target.Name)
				prev := in.curFile
				in.curFile = target.Name
				envs = v.runCode(p.Files[target.Name], envs)
				in.curFile = prev
				in.fileStack = in.fileStack[:len(in.fileStack)-1]
			}
			vals = v.fill(envs, done)

		case ir.OpExit:
			for _, e := range envs {
				e.Terminated = true
			}
			vals = v.fill(envs, g.NewConcrete(sexpr.NullVal{}, line))

		case ir.OpPrint:
			vals = v.fill(envs, g.NewConcrete(sexpr.IntVal(1), line))

		case ir.OpEvalExpr:
			envs, vals = in.eval(p.Exprs[ins.A], envs)

		case ir.OpBlock:
			envs = v.runCode(p.Blocks[ins.A], envs)
			vals = nil

		case ir.OpIf:
			d := &p.Ifs[ins.A]
			var runElse bodyFn
			if d.Else != nil {
				els := d.Else
				runElse = func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runOne(els, es) }
			}
			then := d.Then
			envs = in.branch(envs, vals, line, func(es heapgraph.EnvSet) heapgraph.EnvSet {
				return v.runCode(then, es)
			}, runElse)
			vals = nil

		case ir.OpLoop:
			d := &p.Loops[ins.A]
			envs = in.condLoop(
				func(es heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) { return v.runExpr(d.Cond, es) },
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(d.Body, es) },
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.loopPost(d.Post, es) },
				line, envs, d.BodyFirst)
			vals = nil

		case ir.OpForeach:
			d := &p.Foreachs[ins.A]
			valExpr := p.Exprs[d.Val]
			keyName := ""
			hasKey := d.KeyName >= 0
			if hasKey {
				keyName = p.Strings[d.KeyName]
			}
			envs = in.foreachLoop(envs, vals, line, keyName, hasKey,
				func(e *heapgraph.Env, val heapgraph.Label) heapgraph.EnvSet {
					return in.assignTo(valExpr, heapgraph.EnvSet{e}, []heapgraph.Label{val})
				},
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(d.Body, es) })
			vals = nil

		case ir.OpTry:
			d := &p.Trys[ins.A]
			catches := make([]catchClause, len(d.Catches))
			for ci, cd := range d.Catches {
				body := cd.Body
				name := ""
				if cd.VarName >= 0 {
					name = p.Strings[cd.VarName]
				}
				catches[ci] = catchClause{varName: name, line: int(cd.Line), run: func(es heapgraph.EnvSet) heapgraph.EnvSet {
					return v.runCode(body, es)
				}}
			}
			var fin bodyFn
			if d.Finally != nil {
				f := d.Finally
				fin = func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(f, es) }
			}
			body := d.Body
			envs = in.tryJoin(envs, func(es heapgraph.EnvSet) heapgraph.EnvSet {
				return v.runCode(body, es)
			}, catches, fin)
			vals = nil

		case ir.OpReturn:
			if ins.B == 1 {
				for i, e := range envs {
					e.Returned = vals[i]
					e.Terminated = true
				}
			} else {
				for _, e := range envs {
					e.Returned = g.NewConcrete(sexpr.NullVal{}, line)
					e.Terminated = true
				}
			}
			vals = nil

		case ir.OpBreak:
			for _, e := range envs {
				e.BreakN = int(ins.A)
			}
			vals = nil

		case ir.OpContinue:
			for _, e := range envs {
				e.ContinueN = int(ins.A)
			}
			vals = nil

		case ir.OpThrow:
			for _, e := range envs {
				e.Terminated = true
			}
			vals = nil

		case ir.OpGlobal:
			for _, e := range envs {
				for _, name := range p.Names[ins.A] {
					n := name
					e.ImportGlobal(n, func() heapgraph.Label {
						return g.NewSymbol("s_global_"+n, sexpr.Unknown, line)
					})
				}
			}
			vals = nil

		case ir.OpStaticSym:
			name := p.Strings[ins.A]
			for _, e := range envs {
				l := g.NewSymbol("s_static_"+name, sexpr.Unknown, line)
				e.Bind(name, l)
				if in.rec != nil {
					in.rec.bindVar(e, name, l)
				}
			}
			vals = nil

		case ir.OpUnset:
			for _, name := range p.Names[ins.A] {
				for _, e := range envs {
					e.Unbind(name)
					if in.rec != nil {
						in.rec.unbindVar(e, name)
					}
				}
			}
			vals = nil

		case ir.OpConsumeLoop:
			consumeLoopControl(envs)

		default:
			panic("interp: vm: invalid opcode " + ins.Op.String())
		}
	}
	return envs, vals
}
