package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/ir"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// vmRun dispatches compiled ir bytecode over the same heap graph,
// environments and statistics as the tree walker. Expression instructions
// maintain a value register of one label per live path; sub-expression
// results that must survive a fork are parked on the per-environment
// operand stack (exactly the tree walker's pushTmp/popTmp discipline, so
// labels stay aligned when environments clone). Control-flow instructions
// delegate to the shared fork/loop/try core in controlflow.go with
// bytecode body runners, which makes the two engines byte-for-byte
// equivalent on the heap graph they build.
type vmRun struct {
	in   *Interp
	prog *ir.Program

	// instrs / spans mirror Stats.IRInstructionsExecuted and
	// Stats.VMDispatchLoops.
	instrs int64
	spans  int64
}

var castTypes = map[string]sexpr.Type{
	"int": sexpr.Int, "float": sexpr.Float, "string": sexpr.String,
	"bool": sexpr.Bool, "array": sexpr.Array,
}

// runCode executes one compiled statement list with the tree walker's
// per-statement budget checkpoint and suspended-path partition.
func (v *vmRun) runCode(c *ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	in := v.in
	for _, sp := range c.Spans {
		if in.overBudget(envs) {
			return envs
		}
		var live, held heapgraph.EnvSet
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		in.stats.PathsHeld += int64(len(held))
		if len(live) == 0 {
			return envs
		}
		live, _ = v.exec(c, sp, live)
		envs = append(live, held...)
	}
	return envs
}

// runOne executes a single-statement Code without a budget checkpoint
// (execStmt semantics — used for else branches so elseif chains do not
// double-count checkpoints).
func (v *vmRun) runOne(c *ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	envs, _ = v.exec(c, c.Spans[0], envs)
	return envs
}

// runExpr executes an expression Code (no spans) and returns the value
// register.
func (v *vmRun) runExpr(c *ir.Code, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	return v.exec(c, ir.Span{Off: 0, N: int32(len(c.Instrs))}, envs)
}

// loopPost mirrors Interp.execLoopPost over compiled post-expression
// codes.
func (v *vmRun) loopPost(post []*ir.Code, envs heapgraph.EnvSet) heapgraph.EnvSet {
	if len(post) == 0 {
		return envs
	}
	clearContinues(envs)
	var live, held heapgraph.EnvSet
	for _, e := range envs {
		if e.Suspended() {
			held = append(held, e)
		} else {
			live = append(live, e)
		}
	}
	for _, p := range post {
		if len(live) == 0 {
			break
		}
		live, _ = v.runExpr(p, live)
	}
	return append(live, held...)
}

// popArgs pops n parked argument labels off one path's operand stack,
// restoring source order.
func popArgs(e *heapgraph.Env, n int) []heapgraph.Label {
	args := make([]heapgraph.Label, n)
	for j := n - 1; j >= 0; j-- {
		args[j] = e.PopTmp()
	}
	return args
}

// exec dispatches one statement span. The returned label slice is the
// value register after the last instruction (the statement's expression
// value, if any).
func (v *vmRun) exec(c *ir.Code, sp ir.Span, envs heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) {
	in, g, p := v.in, v.in.g, v.prog
	v.spans++
	v.instrs += int64(sp.N)
	var vals []heapgraph.Label
	end := int(sp.Off + sp.N)
	for pc := int(sp.Off); pc < end; pc++ {
		ins := &c.Instrs[pc]
		line := int(ins.Line)
		switch ins.Op {
		case ir.OpConst:
			vals = sameLabel(envs, g.NewConcrete(p.Consts[ins.A], line))

		case ir.OpVar:
			name := p.Strings[ins.A]
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				vals[i] = in.varLabel(e, name, line)
			}

		case ir.OpPark:
			pushTmp(envs, vals)

		case ir.OpPeekTmp:
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				vals[i] = e.Tmp[len(e.Tmp)-1]
			}

		case ir.OpFreshSym:
			vals = sameLabel(envs, g.NewSymbol(p.Strings[ins.A], sexpr.Type(ins.B), line))

		case ir.OpSharedSym:
			vals = sameLabel(envs, in.symbolShared(p.Strings[ins.A], sexpr.Type(ins.B), line))

		case ir.OpConstFetch:
			vals = sameLabel(envs, in.constLabel(p.Strings[ins.A], line))

		case ir.OpInterpString:
			n := int(ins.A)
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				parts := popArgs(e, n)
				cur := parts[0]
				for j := 1; j < n; j++ {
					op := g.NewOp(".", sexpr.String, line)
					g.AddEdge(op, cur)
					g.AddEdge(op, parts[j])
					cur = op
				}
				vals[i] = cur
			}

		case ir.OpIndex:
			arrs := popTmp(envs)
			idxs := vals
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				vals[i] = in.readElem(arrs[i], idxs[i], line)
			}

		case ir.OpArrayLit:
			desc := p.ArrayDescs[ins.A]
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				type kv struct {
					key    heapgraph.Label
					hasKey bool
					val    heapgraph.Label
				}
				items := make([]kv, len(desc))
				for j := len(desc) - 1; j >= 0; j-- {
					items[j].val = e.PopTmp()
					if desc[j] {
						items[j].key = e.PopTmp()
						items[j].hasKey = true
					}
				}
				arr := g.NewArray(line)
				for _, it := range items {
					if it.hasKey {
						if k, ok := in.concreteKey(it.key); ok {
							g.SetElem(arr, k, it.val)
							continue
						}
					}
					g.PushElem(arr, it.val)
				}
				vals[i] = arr
			}

		case ir.OpUnary:
			op := p.Strings[ins.A]
			ls := vals
			shared := map[heapgraph.Label]heapgraph.Label{}
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				if folded, ok := in.foldUnary(op, ls[i], line); ok {
					vals[i] = folded
					continue
				}
				if l, ok := shared[ls[i]]; ok {
					vals[i] = l
					continue
				}
				t := sexpr.Bool
				if op == "-" || op == "+" || op == "~" {
					t = sexpr.Int
				}
				o := g.NewOp(op, t, line)
				g.AddEdge(o, ls[i])
				shared[ls[i]] = o
				vals[i] = o
			}

		case ir.OpBinary:
			op := p.Strings[ins.A]
			lls := popTmp(envs)
			rls := vals
			type operands struct{ l, r heapgraph.Label }
			shared := map[operands]heapgraph.Label{}
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				key := operands{lls[i], rls[i]}
				if l, ok := shared[key]; ok {
					vals[i] = l
					continue
				}
				if folded, ok := in.foldBinary(op, lls[i], rls[i], line); ok {
					shared[key] = folded
					vals[i] = folded
					continue
				}
				o := g.NewOp(op, binaryResultType(op), line)
				g.AddEdge(o, lls[i])
				g.AddEdge(o, rls[i])
				shared[key] = o
				vals[i] = o
			}

		case ir.OpIsset:
			n := int(ins.A)
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				op := g.NewOp("isset", sexpr.Bool, line)
				var ops []heapgraph.Label
				for j := 0; j < n; j++ {
					ops = append(ops, e.PopTmp())
				}
				for j := len(ops) - 1; j >= 0; j-- {
					g.AddEdge(op, ops[j])
				}
				vals[i] = op
			}

		case ir.OpEmpty:
			ls := vals
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				op := g.NewOp("empty", sexpr.Bool, line)
				g.AddEdge(op, ls[i])
				vals[i] = op
			}

		case ir.OpTernary:
			els := vals
			tls := popTmp(envs)
			cls := popTmp(envs)
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				if b, ok := in.concreteBool(cls[i]); ok {
					if b {
						vals[i] = tls[i]
					} else {
						vals[i] = els[i]
					}
					continue
				}
				to := g.Find(tls[i])
				t := sexpr.Unknown
				if to != nil {
					t = to.Type
				}
				op := g.NewOp("ite", t, line)
				g.AddEdge(op, cls[i])
				g.AddEdge(op, tls[i])
				g.AddEdge(op, els[i])
				vals[i] = op
			}

		case ir.OpCast:
			castType := p.Strings[ins.A]
			ls := vals
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				o := g.Find(ls[i])
				if o != nil && o.Kind == heapgraph.KindConcrete {
					switch castType {
					case "int":
						if iv, ok := concreteInt(o.Val); ok {
							vals[i] = g.NewConcrete(sexpr.IntVal(iv), line)
							continue
						}
					case "string":
						if sv, ok := concreteString(o.Val); ok {
							vals[i] = g.NewConcrete(sexpr.StrVal(sv), line)
							continue
						}
					case "bool":
						if bv, ok := in.concreteBool(ls[i]); ok {
							vals[i] = g.NewConcrete(sexpr.BoolVal(bv), line)
							continue
						}
					}
				}
				op := g.NewOp("cast_"+castType, castTypes[castType], line)
				g.AddEdge(op, ls[i])
				vals[i] = op
			}

		case ir.OpBindVar:
			name := p.Strings[ins.A]
			for i, e := range envs {
				e.Bind(name, vals[i])
			}

		case ir.OpAssignTo:
			// The register is left as the assigned values (assignments are
			// expressions); like evalAssign, it is not re-aligned if the
			// target's own evaluation forks.
			envs = in.assignTo(p.Exprs[ins.A], envs, vals)

		case ir.OpIncDecVar:
			name := p.Strings[ins.A]
			olds := vals
			one := g.NewConcrete(sexpr.IntVal(1), line)
			news := make([]heapgraph.Label, len(envs))
			opName := "+"
			if ins.B&1 != 0 {
				opName = "-"
			}
			for i := range envs {
				if folded, ok := in.foldBinary(opName, olds[i], one, line); ok {
					news[i] = folded
					continue
				}
				op := g.NewOp(opName, sexpr.Int, line)
				g.AddEdge(op, olds[i])
				g.AddEdge(op, one)
				news[i] = op
			}
			for i, e := range envs {
				e.Bind(name, news[i])
			}
			if ins.B&2 != 0 {
				vals = news
			} else {
				vals = olds
			}

		case ir.OpPropFetch:
			prop := p.Strings[ins.A]
			ols := vals
			vals = make([]heapgraph.Label, len(envs))
			for i := range envs {
				if info := g.Array(ols[i]); info != nil {
					if l, ok := g.Elem(ols[i], prop); ok {
						vals[i] = l
						continue
					}
					l := g.NewSymbol("", sexpr.Unknown, line)
					g.SetElem(ols[i], prop, l)
					vals[i] = l
					continue
				}
				op := g.NewOp("prop_fetch", sexpr.Unknown, line)
				key := g.NewConcrete(sexpr.StrVal(prop), line)
				g.AddEdge(op, ols[i])
				g.AddEdge(op, key)
				vals[i] = op
			}

		case ir.OpCallDynamic:
			n := int(ins.B)
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				args := popArgs(e, n)
				fn := g.NewFunc("call_dynamic", sexpr.Unknown, line)
				for _, a := range args {
					g.AddEdge(fn, a)
				}
				vals[i] = fn
			}

		case ir.OpCallSink:
			name := p.Strings[ins.A]
			n := int(ins.B)
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				vals[i] = in.recordSink(name, popArgs(e, n), e, line)
			}

		case ir.OpCallBuiltin:
			name := p.Strings[ins.A]
			n := int(ins.B)
			vals = make([]heapgraph.Label, len(envs))
			for i, e := range envs {
				vals[i] = in.builtinCall(name, popArgs(e, n), e, line)
			}

		case ir.OpCallUser:
			f := p.Funcs[ins.A]
			n := int(ins.B)
			argMatrix := make([][]heapgraph.Label, len(envs))
			for i, e := range envs {
				argMatrix[i] = popArgs(e, n)
			}
			envs, vals = in.inlineFrame(f.LName, f.Params, f.DeclLine, f.EndLine, line, argMatrix, envs, heapgraph.Null,
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(f.Body, es) })

		case ir.OpInclude:
			x := p.Exprs[ins.A].(*phpast.Include)
			target := in.resolveIncludeFile(x)
			done := g.NewConcrete(sexpr.BoolVal(true), line)
			run := target != nil
			if run {
				for _, f := range in.fileStack {
					if f == target.Name {
						run = false // include cycle
						break
					}
				}
			}
			if run {
				in.fileStack = append(in.fileStack, target.Name)
				prev := in.curFile
				in.curFile = target.Name
				envs = v.runCode(p.Files[target.Name], envs)
				in.curFile = prev
				in.fileStack = in.fileStack[:len(in.fileStack)-1]
			}
			vals = sameLabel(envs, done)

		case ir.OpExit:
			for _, e := range envs {
				e.Terminated = true
			}
			vals = sameLabel(envs, g.NewConcrete(sexpr.NullVal{}, line))

		case ir.OpPrint:
			vals = sameLabel(envs, g.NewConcrete(sexpr.IntVal(1), line))

		case ir.OpEvalExpr:
			envs, vals = in.eval(p.Exprs[ins.A], envs)

		case ir.OpBlock:
			envs = v.runCode(p.Blocks[ins.A], envs)
			vals = nil

		case ir.OpIf:
			d := &p.Ifs[ins.A]
			var runElse bodyFn
			if d.Else != nil {
				els := d.Else
				runElse = func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runOne(els, es) }
			}
			then := d.Then
			envs = in.branch(envs, vals, line, func(es heapgraph.EnvSet) heapgraph.EnvSet {
				return v.runCode(then, es)
			}, runElse)
			vals = nil

		case ir.OpLoop:
			d := &p.Loops[ins.A]
			envs = in.condLoop(
				func(es heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) { return v.runExpr(d.Cond, es) },
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(d.Body, es) },
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.loopPost(d.Post, es) },
				line, envs, d.BodyFirst)
			vals = nil

		case ir.OpForeach:
			d := &p.Foreachs[ins.A]
			valExpr := p.Exprs[d.Val]
			keyName := ""
			hasKey := d.KeyName >= 0
			if hasKey {
				keyName = p.Strings[d.KeyName]
			}
			envs = in.foreachLoop(envs, vals, line, keyName, hasKey,
				func(e *heapgraph.Env, val heapgraph.Label) heapgraph.EnvSet {
					return in.assignTo(valExpr, heapgraph.EnvSet{e}, []heapgraph.Label{val})
				},
				func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(d.Body, es) })
			vals = nil

		case ir.OpTry:
			d := &p.Trys[ins.A]
			catches := make([]catchClause, len(d.Catches))
			for ci, cd := range d.Catches {
				body := cd.Body
				name := ""
				if cd.VarName >= 0 {
					name = p.Strings[cd.VarName]
				}
				catches[ci] = catchClause{varName: name, line: int(cd.Line), run: func(es heapgraph.EnvSet) heapgraph.EnvSet {
					return v.runCode(body, es)
				}}
			}
			var fin bodyFn
			if d.Finally != nil {
				f := d.Finally
				fin = func(es heapgraph.EnvSet) heapgraph.EnvSet { return v.runCode(f, es) }
			}
			body := d.Body
			envs = in.tryJoin(envs, func(es heapgraph.EnvSet) heapgraph.EnvSet {
				return v.runCode(body, es)
			}, catches, fin)
			vals = nil

		case ir.OpReturn:
			if ins.B == 1 {
				for i, e := range envs {
					e.Returned = vals[i]
					e.Terminated = true
				}
			} else {
				for _, e := range envs {
					e.Returned = g.NewConcrete(sexpr.NullVal{}, line)
					e.Terminated = true
				}
			}
			vals = nil

		case ir.OpBreak:
			for _, e := range envs {
				e.BreakN = int(ins.A)
			}
			vals = nil

		case ir.OpContinue:
			for _, e := range envs {
				e.ContinueN = int(ins.A)
			}
			vals = nil

		case ir.OpThrow:
			for _, e := range envs {
				e.Terminated = true
			}
			vals = nil

		case ir.OpGlobal:
			for _, e := range envs {
				for _, name := range p.Names[ins.A] {
					n := name
					e.ImportGlobal(n, func() heapgraph.Label {
						return g.NewSymbol("s_global_"+n, sexpr.Unknown, line)
					})
				}
			}
			vals = nil

		case ir.OpStaticSym:
			name := p.Strings[ins.A]
			for _, e := range envs {
				e.Bind(name, g.NewSymbol("s_static_"+name, sexpr.Unknown, line))
			}
			vals = nil

		case ir.OpUnset:
			for _, name := range p.Names[ins.A] {
				for _, e := range envs {
					e.Unbind(name)
				}
			}
			vals = nil

		case ir.OpConsumeLoop:
			consumeLoopControl(envs)

		default:
			panic("interp: vm: invalid opcode " + ins.Op.String())
		}
	}
	return envs, vals
}
