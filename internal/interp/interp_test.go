package interp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
)

// run parses a single file and executes it as a file-level root.
func run(t *testing.T, src string, opts Options) Result {
	t.Helper()
	f, errs := phpparser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	in := New([]*phpast.File{f}, opts)
	root := &callgraph.Node{Kind: callgraph.FileNode, Name: "test.php", File: "test.php"}
	return in.RunRoot(root)
}

// pathSexprs renders the reachability constraint of every final path.
func pathSexprs(res Result) []string {
	var out []string
	for _, e := range res.Envs {
		out = append(out, sexpr.Format(res.Graph.ToSexpr(e.Cur)))
	}
	return out
}

// Listing 2 of the paper: two paths with reachability (> (+ s 55) 10) and
// its negation (Figure 4).
func TestListing2Figure4(t *testing.T) {
	src := `<?php
$a = 55;
$a = $b + $a;
if ($a > 10) {
	$a = 22 - $b;
} else {
	$a = 88;
}
`
	res := run(t, src, Options{})
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	if res.Paths != 2 {
		t.Fatalf("paths = %d, want 2", res.Paths)
	}
	got := pathSexprs(res)
	// $b is uninitialized -> symbol. Symbol names are generated (s_$b).
	wantTrue := "(> (+ s_$b 55) 10)"
	wantFalse := "(! (> (+ s_$b 55) 10))"
	if got[0] != wantTrue || got[1] != wantFalse {
		t.Errorf("reachability = %v, want [%s %s]", got, wantTrue, wantFalse)
	}
	// Path values of $a: (- 22 s_$b) and 88.
	aTrue := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("a")))
	aFalse := sexpr.Format(res.Graph.ToSexpr(res.Envs[1].Get("a")))
	if aTrue != "(- 22 s_$b)" {
		t.Errorf("a(true) = %s", aTrue)
	}
	if aFalse != "88" {
		t.Errorf("a(false) = %s", aFalse)
	}
	// Object sharing: both envs bind $b to the same label.
	if res.Envs[0].Get("b") != res.Envs[1].Get("b") {
		t.Error("$b object should be shared")
	}
}

// Listing 3 / Figure 5: array accesses over $_FILES and unknown arrays.
func TestListing3Figure5(t *testing.T) {
	src := `<?php
$myfile = $_FILES['upload_file'];
$name = $myfile['name'];
$rnd = $test['123'];
`
	res := run(t, src, Options{})
	if res.Paths != 1 {
		t.Fatalf("paths = %d", res.Paths)
	}
	e := res.Envs[0]
	// $name resolves through the pre-structured array to the structured
	// filename (Fig. 6): s_name_upload_file . "." . s_ext_upload_file.
	name := sexpr.Format(res.Graph.ToSexpr(e.Get("name")))
	want := `(. s_name_upload_file (. "." s_ext_upload_file))`
	if name != want {
		t.Errorf("$name = %s, want %s", name, want)
	}
	// $rnd is an array_access over a symbolic array.
	rnd := sexpr.Format(res.Graph.ToSexpr(e.Get("rnd")))
	if !strings.Contains(rnd, "array_access") {
		t.Errorf("$rnd = %s, want array_access node", rnd)
	}
	if !strings.Contains(rnd, `"123"`) {
		t.Errorf("$rnd = %s, want index \"123\"", rnd)
	}
}

// Figure 6: all five pre-structured fields exist and tmp_name is tainted.
func TestFilesPreStructured(t *testing.T) {
	src := `<?php
$f = $_FILES['pic'];
$n = $f['name'];
$t = $f['type'];
$tmp = $f['tmp_name'];
$err = $f['error'];
$sz = $f['size'];
`
	res := run(t, src, Options{})
	e := res.Envs[0]
	g := res.Graph

	if got := sexpr.Format(g.ToSexpr(e.Get("t"))); got != "s_type_pic" {
		t.Errorf("type = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(e.Get("tmp"))); got != "s_tmp_pic" {
		t.Errorf("tmp_name = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(e.Get("err"))); got != "s_error_pic" {
		t.Errorf("error = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(e.Get("sz"))); got != "s_size_pic" {
		t.Errorf("size = %s", got)
	}
	// Taint: every field must reach the $_FILES object.
	for _, v := range []string{"n", "t", "tmp", "err", "sz"} {
		if !g.ReachesName(e.Get(v), "$_FILES") {
			t.Errorf("$%s should be tainted by $_FILES", v)
		}
	}
	// An unrelated value must not be tainted.
	if g.ReachesName(g.NewConcrete(sexpr.StrVal("x"), 1), "$_FILES") {
		t.Error("unrelated object reported tainted")
	}
}

// Listing 4: the sink is recorded with a destination whose s-expression
// matches the paper's se_dst and a reachable path.
func TestListing4SinkRecording(t *testing.T) {
	src := `<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['tmp_name'];
if (!move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName)) {
	return false;
}
return true;
`
	res := run(t, src, Options{})
	if len(res.Sinks) != 1 {
		t.Fatalf("sinks = %d, want 1", len(res.Sinks))
	}
	hit := res.Sinks[0]
	if hit.Sink != "move_uploaded_file" {
		t.Errorf("sink = %s", hit.Sink)
	}
	if hit.Line != 4 {
		t.Errorf("line = %d, want 4", hit.Line)
	}
	// Source is the tainted tmp_name.
	if got := sexpr.Format(res.Graph.ToSexpr(hit.Src)); got != "s_tmp_upload_file" {
		t.Errorf("src = %s", got)
	}
	if !res.Graph.ReachesName(hit.Src, "$_FILES") {
		t.Error("src should be tainted")
	}
	// Destination is s_wp_upload_path . "/" . s_tmp_upload_file.
	dst := sexpr.Format(res.Graph.ToSexpr(hit.Dst))
	if !strings.Contains(dst, "s_wp_upload_path") || !strings.Contains(dst, `"/"`) {
		t.Errorf("dst = %s", dst)
	}
	// The sink executes before the branch: its env has no reachability
	// constraint yet.
	if hit.Env.Cur != heapgraph.Null {
		t.Errorf("sink env cur = %v, want Null", hit.Env.Cur)
	}
	// Final paths: 2 (the if on the sink result).
	if res.Paths != 2 {
		t.Errorf("paths = %d, want 2", res.Paths)
	}
}

// A guard before the sink shows up in the sink env's reachability.
func TestSinkReachabilityConstraint(t *testing.T) {
	src := `<?php
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == "jpg") {
	move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
}
`
	res := run(t, src, Options{})
	if len(res.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(res.Sinks))
	}
	cur := sexpr.Format(res.Graph.ToSexpr(res.Sinks[0].Env.Cur))
	if !strings.Contains(cur, "==") || !strings.Contains(cur, `"jpg"`) || !strings.Contains(cur, "s_ext_f") {
		t.Errorf("sink reachability = %s", cur)
	}
}

// pathinfo + PATHINFO_EXTENSION returns the s_ext symbol of the
// pre-structured name (the WP Demo Buddy idiom).
func TestPathinfoExtension(t *testing.T) {
	src := `<?php
$ext = pathinfo($_FILES['up']['name'], PATHINFO_EXTENSION);
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("ext")))
	if got != "s_ext_up" {
		t.Errorf("ext = %s, want s_ext_up", got)
	}
}

// end(explode('.', $name)) resolves to the extension symbol.
func TestExplodeEndIdiom(t *testing.T) {
	src := `<?php
$parts = explode('.', $_FILES['doc']['name']);
$ext = end($parts);
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("ext")))
	if got != "s_ext_doc" {
		t.Errorf("ext = %s, want s_ext_doc", got)
	}
}

func TestUserFunctionInlining(t *testing.T) {
	src := `<?php
function addone($x) { return $x + 1; }
$y = addone(41);
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("y")))
	if got != "42" {
		t.Errorf("y = %s, want 42", got)
	}
}

func TestFunctionForkPropagatesToCaller(t *testing.T) {
	src := `<?php
function pick($c) {
	if ($c) { return 1; }
	return 2;
}
$r = pick($unknown);
$after = $r;
`
	res := run(t, src, Options{})
	if res.Paths != 2 {
		t.Fatalf("paths = %d, want 2 (callee fork must propagate)", res.Paths)
	}
	vals := map[string]bool{}
	for _, e := range res.Envs {
		vals[sexpr.Format(res.Graph.ToSexpr(e.Get("after")))] = true
	}
	if !vals["1"] || !vals["2"] {
		t.Errorf("after values = %v", vals)
	}
}

func TestRecursionCut(t *testing.T) {
	src := `<?php
function f($n) { return f($n - 1); }
$x = f(3);
`
	res := run(t, src, Options{})
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("x")))
	if !strings.Contains(got, "s_ret_f") {
		t.Errorf("x = %s, want recursion-cut symbol", got)
	}
}

func TestGlobalStatement(t *testing.T) {
	src := `<?php
$dir = "/uploads";
function target() {
	global $dir;
	return $dir . "/x.php";
}
$t = target();
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("t")))
	if got != `"/uploads/x.php"` {
		t.Errorf("t = %s", got)
	}
}

func TestConcreteConditionNoFork(t *testing.T) {
	src := `<?php
if (1 > 2) { $x = "dead"; } else { $x = "live"; }
if (true) { $y = 1; }
`
	res := run(t, src, Options{})
	if res.Paths != 1 {
		t.Fatalf("paths = %d, want 1 (concrete conditions must not fork)", res.Paths)
	}
	if got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("x"))); got != `"live"` {
		t.Errorf("x = %s", got)
	}
	if got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("y"))); got != "1" {
		t.Errorf("y = %s", got)
	}
}

func TestPathExplosionBudget(t *testing.T) {
	// 20 independent symbolic branches = 2^20 paths, over a small budget.
	var sb strings.Builder
	sb.WriteString("<?php\n")
	for i := 0; i < 20; i++ {
		sb.WriteString("if ($v" + string(rune('a'+i)) + ") { $x = 1; } else { $x = 2; }\n")
	}
	res := run(t, sb.String(), Options{MaxPaths: 1000})
	if res.Err == nil {
		t.Fatal("expected budget error")
	}
	if !errors.Is(res.Err, ErrBudgetExceeded) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestWhileUnrolling(t *testing.T) {
	src := `<?php
$i = 0;
while ($i < $n) {
	$i = $i + 1;
}
`
	res := run(t, src, Options{LoopUnroll: 2})
	// Unroll 2 with symbolic condition: paths = 3 (exit at 0, 1, 2 iters).
	if res.Paths != 3 {
		t.Errorf("paths = %d, want 3", res.Paths)
	}
}

func TestForeachConcreteArray(t *testing.T) {
	src := `<?php
$exts = array('jpg', 'png');
$out = "";
foreach ($exts as $e) {
	$out = $out . $e;
}
`
	res := run(t, src, Options{LoopUnroll: 4})
	if res.Err != nil {
		t.Fatalf("err: %v", res.Err)
	}
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("out")))
	if got != `"jpgpng"` {
		t.Errorf("out = %s", got)
	}
}

func TestForeachKeyValue(t *testing.T) {
	src := `<?php
$m = array('a' => 1, 'b' => 2);
$keys = "";
foreach ($m as $k => $v) {
	$keys = $keys . $k;
}
`
	res := run(t, src, Options{LoopUnroll: 4})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("keys")))
	if got != `"ab"` {
		t.Errorf("keys = %s", got)
	}
}

func TestBreakStopsLoop(t *testing.T) {
	src := `<?php
$x = 0;
while (true) {
	$x = $x + 1;
	break;
}
$done = $x;
`
	res := run(t, src, Options{LoopUnroll: 3})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("done")))
	if got != "1" {
		t.Errorf("done = %s, want 1 (break after first iteration)", got)
	}
}

func TestSwitchDesugar(t *testing.T) {
	src := `<?php
switch ($mode) {
	case "a":
		$x = 1;
		break;
	case "b":
		$x = 2;
		break;
	default:
		$x = 3;
}
$y = $x;
`
	res := run(t, src, Options{})
	if res.Paths != 3 {
		t.Fatalf("paths = %d, want 3", res.Paths)
	}
	vals := map[string]bool{}
	for _, e := range res.Envs {
		vals[sexpr.Format(res.Graph.ToSexpr(e.Get("y")))] = true
	}
	for _, want := range []string{"1", "2", "3"} {
		if !vals[want] {
			t.Errorf("missing switch outcome %s (got %v)", want, vals)
		}
	}
}

func TestReturnTerminatesPath(t *testing.T) {
	src := `<?php
if ($c) {
	return;
}
$x = 5;
`
	res := run(t, src, Options{})
	if res.Paths != 2 {
		t.Fatalf("paths = %d", res.Paths)
	}
	var withX, withoutX int
	for _, e := range res.Envs {
		if e.Get("x") != heapgraph.Null {
			withX++
		} else {
			withoutX++
		}
	}
	if withX != 1 || withoutX != 1 {
		t.Errorf("withX=%d withoutX=%d", withX, withoutX)
	}
}

func TestExitTerminates(t *testing.T) {
	src := `<?php
if ($bad) {
	die("forbidden");
}
$x = 1;
`
	res := run(t, src, Options{})
	if res.Paths != 2 {
		t.Fatalf("paths = %d", res.Paths)
	}
}

func TestInterpStringConcat(t *testing.T) {
	src := `<?php
$p = "$dir/up.php";
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("p")))
	if got != `(. s_$dir "/up.php")` {
		t.Errorf("p = %s", got)
	}
}

func TestCompoundAssign(t *testing.T) {
	src := `<?php
$s = "a";
$s .= "b";
$n = 1;
$n += 2;
`
	res := run(t, src, Options{})
	if got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("s"))); got != `"ab"` {
		t.Errorf("s = %s", got)
	}
	if got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("n"))); got != "3" {
		t.Errorf("n = %s", got)
	}
}

func TestArrayCopyOnWrite(t *testing.T) {
	src := `<?php
$a = array('k' => 'v0');
if ($c) {
	$a['k'] = 'v1';
} else {
	$a['k'] = 'v2';
}
$r = $a['k'];
`
	res := run(t, src, Options{})
	if res.Paths != 2 {
		t.Fatalf("paths = %d", res.Paths)
	}
	vals := map[string]bool{}
	for _, e := range res.Envs {
		vals[sexpr.Format(res.Graph.ToSexpr(e.Get("r")))] = true
	}
	if !vals[`"v1"`] || !vals[`"v2"`] {
		t.Errorf("r values = %v (copy-on-write violated)", vals)
	}
}

func TestIncludeExecutes(t *testing.T) {
	main, _ := phpparser.Parse("main.php", `<?php include 'other.php'; $y = $fromOther;`)
	other, _ := phpparser.Parse("other.php", `<?php $fromOther = 7;`)
	in := New([]*phpast.File{main, other}, Options{})
	res := in.RunRoot(&callgraph.Node{Kind: callgraph.FileNode, Name: "main.php", File: "main.php"})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("y")))
	if got != "7" {
		t.Errorf("y = %s", got)
	}
}

func TestFunctionRootParamsSymbolic(t *testing.T) {
	src := `<?php
function handler($file) {
	move_uploaded_file($_FILES[$file]['tmp_name'], "/up/x");
}
`
	f, _ := phpparser.Parse("t.php", src)
	in := New([]*phpast.File{f}, Options{})
	g := callgraph.Build([]*phpast.File{f})
	fn := g.Func("handler")
	if fn == nil {
		t.Fatal("missing handler node")
	}
	res := in.RunRoot(fn)
	if len(res.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(res.Sinks))
	}
	// $_FILES[$file] with a symbolic key uses the shared '*' family.
	if got := sexpr.Format(res.Graph.ToSexpr(res.Sinks[0].Src)); got != "s_tmp_X" {
		t.Errorf("src = %s", got)
	}
}

func TestMethodCallInlining(t *testing.T) {
	src := `<?php
class Up {
	public function go($f) {
		return $f['name'];
	}
}
$u = new Up();
$n = $u->go($_FILES['z']);
`
	res := run(t, src, Options{})
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("n")))
	if !strings.Contains(got, "s_name_z") {
		t.Errorf("n = %s", got)
	}
}

func TestTernaryNoFork(t *testing.T) {
	src := `<?php
$x = $c ? "a" : "b";
`
	res := run(t, src, Options{})
	if res.Paths != 1 {
		t.Fatalf("paths = %d (ternary must not fork)", res.Paths)
	}
	got := sexpr.Format(res.Graph.ToSexpr(res.Envs[0].Get("x")))
	if !strings.Contains(got, "ite") {
		t.Errorf("x = %s", got)
	}
}

func TestObjectsPerPathSharing(t *testing.T) {
	// Many paths share objects: objects/path must be far below objects
	// created per branchless run.
	var sb strings.Builder
	sb.WriteString("<?php\n$base = $_FILES['f']['name'];\n")
	for i := 0; i < 10; i++ {
		v := string(rune('a' + i))
		sb.WriteString("if ($c" + v + ") { $x" + v + " = $base . \"" + v + "\"; }\n")
	}
	res := run(t, sb.String(), Options{})
	if res.Paths != 1024 {
		t.Fatalf("paths = %d, want 1024", res.Paths)
	}
	perPath := float64(res.Graph.NumObjects()) / float64(res.Paths)
	if perPath > 100 {
		t.Errorf("objects/path = %.1f, want < 100 (sharing broken)", perPath)
	}
}
