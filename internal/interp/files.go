package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/sexpr"
)

// multiField identifies a $_FILES field object that PHP's multi-file
// upload form turns into an index-addressable array.
type multiField struct {
	key   string
	field string
}

// filesArray lazily creates the shared $_FILES object. Its structure is
// known a priori (Section III-B4, Fig. 6): each upload key maps to a
// pre-structured array with the five standard fields.
func (in *Interp) filesArray(line int) heapgraph.Label {
	if in.filesArr != heapgraph.Null {
		return in.filesArr
	}
	in.memoEpoch++ // block-cache recordings spanning this fill are invalid
	in.filesArr = in.g.NewSymbol("$_FILES", sexpr.Array, line)
	return in.filesArr
}

// filesField returns (creating on first use) the pre-structured array for
// one upload key of $_FILES. Fig. 6's fields:
//
//	name     → s_name<k> . "." . s_ext<k>   (filename concatenated with its
//	                                         extension via the "." operator)
//	type     → s_type<k>
//	tmp_name → s_tmp<k>
//	error    → s_error<k>
//	size     → s_size<k>
//
// The structured 'name' is the linchpin of Constraint-2: the destination
// path inherits the s_ext symbol, and the solver searches for an
// assignment making the path end in ".php".
//
// The key "*" is used when the index expression is symbolic, giving all
// unknown-key accesses one shared upload family.
func (in *Interp) filesField(key string, line int) heapgraph.Label {
	if l, ok := in.filesFields[key]; ok {
		return l
	}
	in.memoEpoch++ // block-cache recordings spanning this fill are invalid
	suffix := "_" + sanitizeSym(key)
	arr := in.g.NewArray(line)
	files := in.filesArray(line)

	// taintedSym creates a field symbol carrying a provenance edge to the
	// $_FILES object. Provenance edges from symbol (leaf) objects are
	// ignored by ToSexpr — they exist purely for the Constraint-1 taint
	// query, which follows heap-graph paths to $_FILES.
	taintedSym := func(name string, t sexpr.Type) heapgraph.Label {
		l := in.g.NewSymbol(name, t, line)
		in.g.AddEdge(l, files)
		return l
	}

	sName := taintedSym("s_name"+suffix, sexpr.String)
	sExt := taintedSym("s_ext"+suffix, sexpr.String)
	dot := in.g.NewConcrete(sexpr.StrVal("."), line)
	// (. "." s_ext)
	dotExt := in.g.NewOp(".", sexpr.String, line)
	in.g.AddEdge(dotExt, dot)
	in.g.AddEdge(dotExt, sExt)
	// (. s_name (. "." s_ext))
	name := in.g.NewOp(".", sexpr.String, line)
	in.g.AddEdge(name, sName)
	in.g.AddEdge(name, dotExt)

	in.g.SetElem(arr, "name", name)
	tmp := taintedSym("s_tmp"+suffix, sexpr.String)
	in.g.SetElem(arr, "type", taintedSym("s_type"+suffix, sexpr.String))
	in.g.SetElem(arr, "tmp_name", tmp)
	in.g.SetElem(arr, "error", taintedSym("s_error"+suffix, sexpr.Int))
	in.g.SetElem(arr, "size", taintedSym("s_size"+suffix, sexpr.Int))

	// PHP's multi-file form (<input name="f[]">) nests one more level:
	// $_FILES['f']['name'][$i]. Register the field objects so an index
	// access on them resolves to a per-(key, index) pre-structured family
	// instead of an opaque array_access — see Interp.readElem.
	if in.filesMulti == nil {
		in.filesMulti = map[heapgraph.Label]multiField{}
	}
	in.filesMulti[name] = multiField{key: key, field: "name"}
	in.filesMulti[tmp] = multiField{key: key, field: "tmp_name"}

	in.filesFields[key] = arr
	return arr
}

// FilesLabel exposes the $_FILES object label for taint queries; Null when
// the program never touched $_FILES.
func (in *Interp) FilesLabel() heapgraph.Label { return in.filesArr }

func sanitizeSym(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		case c == '*':
			out = append(out, 'X')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
