package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/sexpr"
	"repro/internal/summary"
)

// Statement-boundary path merging: the summary engine's answer to the
// paper's path explosion (ROADMAP item 3). Inside a summarized scope,
// after every statement, environments that are observably identical —
// same bindings except the function's dead variables, same control
// state — and whose pending path-condition suffixes are independent
// single-use literals are collapsed to the first representative. The
// dropped paths could never change a finding:
//
//   - Observable equality means every later statement computes the
//     same labels on both paths, so any future sink hit records the
//     same Src/Dst on either.
//   - Findings are deduplicated per sink site keeping the first
//     SATISFIABLE path (scanner.verifySinks), and environments keep
//     their fork order, so the inline engine would report the first
//     path's finding. The survivor here IS that first path, provided
//     its own suffix is satisfiable whenever any member's is — which
//     the literal rules below guarantee by construction: each suffix
//     is a conjunction of literals over distinct free single-use
//     condition symbols (or, for switch chains, equalities against
//     pairwise-distinct constants), hence satisfiable on its own, and
//     over symbols the shared prefix can only constrain to the same
//     first-arm literal the survivor carries.
//
// Anything outside that vocabulary — a condition involving a builtin
// call, a symbol used elsewhere, repeated or conflicting literals —
// makes the pair ineligible and both paths survive, exactly as under
// the inline engine.

// mergeFrame is the merge metadata of one summarized scope.
type mergeFrame struct {
	// depth is the Env.Depth() at which the scope's statements run;
	// merging only fires for env sets back at this depth (never inside
	// a nested, unsummarized callee).
	depth int
	// dead is the scope's dead-variable set (raw var names): bindings
	// ignored by the observable-equality comparison.
	dead map[string]bool
	// syms is the set of condition-symbol names ("s_$" + var) whose
	// literals may appear in a mergeable path-condition suffix.
	syms map[string]bool
}

// pushMergeScope enters a summarized scope for the named function if
// summary mode is on and the function's summary permits merging. The
// returned func pops whatever was pushed (a no-op when nothing was).
func (in *Interp) pushMergeScope(lname string, envs heapgraph.EnvSet) func() {
	if in.opts.Summaries == nil || len(envs) == 0 {
		return func() {}
	}
	sum := in.opts.Summaries.Lookup(lname)
	if sum == nil || sum.Escapes {
		return func() {}
	}
	dead := make(map[string]bool, len(sum.DeadVars))
	for _, v := range sum.DeadVars {
		dead[v] = true
	}
	syms := make(map[string]bool, len(sum.MergeVars))
	for _, v := range sum.MergeVars {
		// The sticky varLabel binding names a variable's symbol
		// "s_$" + name on first unbound read.
		syms["s_$"+v] = true
	}
	in.mergeStack = append(in.mergeStack, mergeFrame{
		depth: envs[0].Depth(),
		dead:  dead,
		syms:  syms,
	})
	return func() { in.mergeStack = in.mergeStack[:len(in.mergeStack)-1] }
}

// mergeBoundary collapses observably equivalent paths at a statement
// boundary. Keep-first: the earliest member of each equivalence class
// survives, preserving the engine's path order.
func (in *Interp) mergeBoundary(envs heapgraph.EnvSet) heapgraph.EnvSet {
	if len(in.mergeStack) == 0 || len(envs) < 2 {
		return envs
	}
	mf := &in.mergeStack[len(in.mergeStack)-1]
	out := make(heapgraph.EnvSet, 0, len(envs))
	dropped := 0
	for _, e := range envs {
		merged := false
		for _, keep := range out {
			if in.mergeEquivalent(keep, e, mf) {
				merged = true
				break
			}
		}
		if merged {
			dropped++
		} else {
			out = append(out, e)
		}
	}
	if dropped == 0 {
		return envs
	}
	in.stats.PathsAvoided += int64(dropped)
	return out
}

// mergeEquivalent reports whether cand may be dropped in favor of keep.
func (in *Interp) mergeEquivalent(keep, cand *heapgraph.Env, mf *mergeFrame) bool {
	if keep.Depth() != mf.depth || cand.Depth() != mf.depth {
		return false
	}
	if !keep.EquivalentModulo(cand, mf.dead) {
		return false
	}
	return in.curMergeable(keep.Cur, cand.Cur, mf.syms)
}

// maxSpineWalk bounds the path-condition spine walk; deeper chains give
// up (no merge) rather than spend unbounded time.
const maxSpineWalk = 128

// curMergeable checks that the two path conditions share a common
// ancestor and that both divergent suffixes are conjunctions of
// eligible independent literals.
func (in *Interp) curMergeable(a, b heapgraph.Label, syms map[string]bool) bool {
	if a == b {
		return true
	}
	if a == heapgraph.Null || b == heapgraph.Null {
		return false
	}
	// Keeper spine: every node from a down through the And chain,
	// terminal included.
	spine := map[heapgraph.Label]bool{}
	node := a
	for i := 0; ; i++ {
		if i > maxSpineWalk {
			return false
		}
		spine[node] = true
		prev, _, ok := in.andParts(node)
		if !ok {
			break
		}
		node = prev
	}
	// Candidate walk until a spine node appears. A divergent terminal is
	// not a failure: ER seeds Cur with the chain's first condition
	// directly (no And wrapper), so two chains whose terminals differ
	// share exactly the empty pre-fork condition — both full chains,
	// terminals included, are then the suffixes ("rooted" below).
	ancestor := heapgraph.Null
	rooted := false
	bConds := make([]heapgraph.Label, 0, 8)
	node = b
	for i := 0; ; i++ {
		if i > maxSpineWalk {
			return false
		}
		if spine[node] {
			ancestor = node
			break
		}
		prev, cond, ok := in.andParts(node)
		if !ok {
			bConds = append(bConds, node)
			rooted = true
			break
		}
		bConds = append(bConds, cond)
		node = prev
	}
	// Keeper suffix: conds above the ancestor, or the whole chain
	// (terminal included) when the suffixes are rooted.
	aSuffix := make([]heapgraph.Label, 0, 8)
	node = a
	for rooted || node != ancestor {
		prev, cond, ok := in.andParts(node)
		if !ok {
			if !rooted {
				return false
			}
			aSuffix = append(aSuffix, node)
			break
		}
		aSuffix = append(aSuffix, cond)
		node = prev
	}
	return in.suffixEligible(aSuffix, syms) && in.suffixEligible(bConds, syms)
}

// andParts decomposes an ER-built conjunction node into (prefix, cond).
func (in *Interp) andParts(l heapgraph.Label) (prev, cond heapgraph.Label, ok bool) {
	if l == heapgraph.Null {
		return heapgraph.Null, heapgraph.Null, false
	}
	o := in.g.Find(l)
	if o == nil || o.Kind != heapgraph.KindOp || o.Name != "And" {
		return heapgraph.Null, heapgraph.Null, false
	}
	edges := in.g.Edges(l)
	if len(edges) != 2 {
		return heapgraph.Null, heapgraph.Null, false
	}
	return edges[0], edges[1], true
}

// condLiteral is one classified suffix condition.
type condLiteral struct {
	sym string // condition-symbol name
	eq  bool   // equality literal (vs bare truthiness)
	neg bool
	val sexpr.Expr // comparand for equality literals
}

// suffixEligible classifies every cond and applies the per-symbol
// satisfiability rules: bare literals at most once per symbol; equality
// literals with at most one positive and pairwise-distinct comparands;
// no mixing of the two forms on one symbol.
func (in *Interp) suffixEligible(conds []heapgraph.Label, syms map[string]bool) bool {
	lits := make([]condLiteral, 0, len(conds))
	for _, c := range conds {
		lit, ok := in.classifyCond(c, syms, false)
		if !ok {
			return false
		}
		lits = append(lits, lit)
	}
	for i, a := range lits {
		for _, b := range lits[:i] {
			if a.sym != b.sym {
				continue
			}
			if a.eq != b.eq {
				return false // mixed forms on one symbol
			}
			if !a.eq {
				return false // repeated bare literal
			}
			if !a.neg && !b.neg {
				return false // two positive equalities
			}
			if sexprEqual(a.val, b.val) {
				return false // same comparand twice (c and/or !c)
			}
		}
	}
	return true
}

// classifyCond matches one condition label against the literal
// vocabulary: sym, !sym, sym == const, !(sym == const).
func (in *Interp) classifyCond(l heapgraph.Label, syms map[string]bool, negated bool) (condLiteral, bool) {
	o := in.g.Find(l)
	if o == nil {
		return condLiteral{}, false
	}
	switch o.Kind {
	case heapgraph.KindSymbol:
		if !syms[o.Name] {
			return condLiteral{}, false
		}
		return condLiteral{sym: o.Name, neg: negated}, true
	case heapgraph.KindOp:
		edges := in.g.Edges(l)
		switch o.Name {
		case "!":
			if negated || len(edges) != 1 {
				return condLiteral{}, false // double negation: out of vocabulary
			}
			return in.classifyCond(edges[0], syms, true)
		case "==":
			if len(edges) != 2 {
				return condLiteral{}, false
			}
			sym, val, ok := in.eqOperands(edges[0], edges[1], syms)
			if !ok {
				return condLiteral{}, false
			}
			return condLiteral{sym: sym, eq: true, neg: negated, val: val}, true
		}
	}
	return condLiteral{}, false
}

// eqOperands accepts symbol==concrete in either operand order, with a
// scalar comparand.
func (in *Interp) eqOperands(x, y heapgraph.Label, syms map[string]bool) (string, sexpr.Expr, bool) {
	ox, oy := in.g.Find(x), in.g.Find(y)
	if ox == nil || oy == nil {
		return "", nil, false
	}
	if ox.Kind == heapgraph.KindSymbol && syms[ox.Name] && oy.Kind == heapgraph.KindConcrete && scalarVal(oy.Val) {
		return ox.Name, oy.Val, true
	}
	if oy.Kind == heapgraph.KindSymbol && syms[oy.Name] && ox.Kind == heapgraph.KindConcrete && scalarVal(ox.Val) {
		return oy.Name, ox.Val, true
	}
	return "", nil, false
}

// scalarVal guards the comparand comparison: only scalar sexpr values
// are safely comparable with ==.
func scalarVal(v sexpr.Expr) bool {
	switch v.(type) {
	case sexpr.StrVal, sexpr.IntVal, sexpr.BoolVal, sexpr.FloatVal, sexpr.NullVal:
		return true
	}
	return false
}

func sexprEqual(a, b sexpr.Expr) bool {
	if !scalarVal(a) || !scalarVal(b) {
		return false
	}
	return a == b
}

// callSummary resolves the summary for a callee, or nil in inline mode.
func (in *Interp) callSummary(lname string) *summary.Summary {
	if in.opts.Summaries == nil {
		return nil
	}
	return in.opts.Summaries.Lookup(lname)
}
