package interp

import (
	"repro/internal/heapgraph"
	"repro/internal/ir"
	"repro/internal/sexpr"
	"repro/internal/smt"
)

// Block-fact cache for the VM engine (DESIGN.md "Block-level fact
// caching").
//
// A statement span flagged ir.Code.Cacheable is straight-line and
// heap-graph-local: it cannot fork, suspend, or reorder paths, cannot
// escape to the tree walker's statement machinery, and — by construction
// of the cacheable opcode set — never reads or extends a path condition
// (Env.Cur). Its entire observable effect is therefore a sequence of
// graph allocations/edges/element writes plus environment (un)binds, all
// of which the heapgraph.Recorder hooks and the interpreter's
// varLabel/bind sites tape while the span executes once.
//
// A recording's validity is established by *validation, not hashing*: at
// lookup time the recorded read probes are replayed against the live
// state — every variable read must resolve to the exact label it did at
// record time, every pre-existing array read must see the exact element
// table version, and the scalar facts (env count, memo epoch, current
// file) must match (a cheap smt.Hasher digest of the scalars pre-filters
// candidates). If every probe matches, re-executing the span could not
// take any different decision than the recording did, so the taped
// effects are replayed with fresh labels instead of dispatching.
//
// Label remapping: labels the recording allocated (l > startLabel) shift
// by the replay's own allocation base; labels that existed before the
// span (l <= startLabel) are absolute and reused as-is. Because the graph
// allocates labels sequentially and the tape preserves allocation order,
// the replayed objects receive exactly the labels a real re-execution
// would have produced — including auto-generated symbol names, which are
// taped pre-generation so replay re-consumes Graph.symSeq identically.
//
// Poisons (the recording is discarded rather than stored): the memo
// epoch advanced mid-span (a superglobal/constant/$_FILES memo filled),
// the span mutated an array that predates it, the tape or probe list
// outgrew its cap, or an environment outside the span's set was touched.

// tape event kinds.
const (
	evAlloc = iota
	evEdge
	evSetElem
	evBind
	evUnbind
)

// tapeEvent is one recorded effect. Field use depends on kind:
//
//	evAlloc:   objKind, name, t, val, line; a is the record-time label
//	evEdge:    a (from), b (to)
//	evSetElem: a (array), b (value), name (key)
//	evBind:    envIdx, name, a (label)
//	evUnbind:  envIdx, name
type tapeEvent struct {
	kind    uint8
	objKind heapgraph.ObjKind
	envIdx  int32
	line    int32
	a, b    heapgraph.Label
	name    string
	t       sexpr.Type
	val     sexpr.Expr
}

// varRead is a validation probe: at record time, envs[envIdx].Get(name)
// returned label (possibly Null). Reads of names the span itself had
// already (un)bound are not probed — the tape determines them.
type varRead struct {
	envIdx int32
	name   string
	label  heapgraph.Label
}

// arrRead is a validation probe: a pre-existing array's element table was
// read at version ver. In-span-created arrays are not probed — the tape
// reconstructs them bit-identically.
type arrRead struct {
	arr heapgraph.Label
	ver uint64
}

// Recording size caps. A span whose tape or probe list outgrows these is
// simply not cached (typically a per-path-effect span over a very large
// live set, where replay would buy little over execution anyway).
const (
	maxTapeEvents     = 1024
	maxReadProbes     = 256
	maxVariants       = 4 // recordings kept per (code, span) key
	maxRecordFailures = 2 // poisoned attempts before a span stops recording
)

// blockRecording is one validated-replayable execution of a span.
type blockRecording struct {
	fp         uint64 // smt.Hasher digest of (nEnvs, memoEpoch, curFile)
	nEnvs      int
	memoEpoch  int64
	curFile    string
	startLabel heapgraph.Label
	varReads   []varRead
	arrReads   []arrRead
	tape       []tapeEvent
}

func scalarFingerprint(nEnvs int, epoch int64, curFile string) uint64 {
	var h smt.Hasher
	h.WriteUint64(uint64(nEnvs))
	h.WriteUint64(uint64(epoch))
	h.WriteString(curFile)
	return h.Sum()
}

// matches replays the recording's read probes against live state.
func (r *blockRecording) matches(in *Interp, envs heapgraph.EnvSet) bool {
	if len(envs) != r.nEnvs || in.memoEpoch != r.memoEpoch || in.curFile != r.curFile {
		return false
	}
	for i := range r.varReads {
		p := &r.varReads[i]
		if envs[p.envIdx].Get(p.name) != p.label {
			return false
		}
	}
	for i := range r.arrReads {
		p := &r.arrReads[i]
		info := in.g.Array(p.arr)
		if info == nil || info.Ver != p.ver {
			return false
		}
	}
	return true
}

// replay re-applies the taped effects. Labels allocated by the recording
// shift onto the replay's allocation base; pre-existing labels are
// absolute. Allocations go through the ordinary Graph constructors, so
// label assignment, symSeq consumption, and object contents are exactly
// those of a real re-execution.
func (r *blockRecording) replay(in *Interp, envs heapgraph.EnvSet) {
	g := in.g
	base := g.LastLabel()
	start := r.startLabel
	remap := func(l heapgraph.Label) heapgraph.Label {
		if l > start {
			return base + (l - start)
		}
		return l
	}
	for i := range r.tape {
		ev := &r.tape[i]
		switch ev.kind {
		case evAlloc:
			line := int(ev.line)
			switch ev.objKind {
			case heapgraph.KindConcrete:
				g.NewConcrete(ev.val, line)
			case heapgraph.KindSymbol:
				g.NewSymbol(ev.name, ev.t, line)
			case heapgraph.KindFunc:
				g.NewFunc(ev.name, ev.t, line)
			case heapgraph.KindOp:
				g.NewOp(ev.name, ev.t, line)
			case heapgraph.KindArray:
				g.NewArray(line)
			}
		case evEdge:
			g.AddEdge(remap(ev.a), remap(ev.b))
		case evSetElem:
			g.SetElem(remap(ev.a), ev.name, remap(ev.b))
		case evBind:
			envs[ev.envIdx].Bind(ev.name, remap(ev.a))
		case evUnbind:
			envs[ev.envIdx].Unbind(ev.name)
		}
	}
}

// spanKey identifies one statement span of one compiled code.
type spanKey struct {
	code *ir.Code
	span int
}

// blockCache memoizes span effects for one Interp (one root: recordings
// reference this root's graph labels and memo epochs, so the cache's
// scope is exactly the graph's). Per-root scoping also keeps scan results
// deterministic across worker counts — nothing leaks between roots.
type blockCache struct {
	m map[spanKey][]*blockRecording
	// bad counts poisoned recording attempts per span: a span whose
	// executions keep poisoning (per-path tapes outgrowing the cap, spans
	// that always fill a memo or mutate pre-existing arrays) stops paying
	// the taping overhead after maxRecordFailures attempts.
	bad map[spanKey]int8
	// warm marks spans that have missed at least once. Taping starts on
	// the second miss: most spans execute exactly once per root, and
	// recording those is pure overhead — only re-executed spans (loop
	// bodies, re-included files, repeated call sites) can ever hit.
	warm map[spanKey]bool
}

func newBlockCache() *blockCache {
	return &blockCache{
		m:    map[spanKey][]*blockRecording{},
		bad:  map[spanKey]int8{},
		warm: map[spanKey]bool{},
	}
}

// lookup returns a recording whose probes validate against live state, or
// nil.
func (bc *blockCache) lookup(in *Interp, c *ir.Code, span int, envs heapgraph.EnvSet) *blockRecording {
	recs := bc.m[spanKey{c, span}]
	if len(recs) == 0 {
		return nil
	}
	fp := scalarFingerprint(len(envs), in.memoEpoch, in.curFile)
	for _, r := range recs {
		if r.fp == fp && r.matches(in, envs) {
			return r
		}
	}
	return nil
}

// shouldRecord reports whether a missed span is worth taping: not on its
// first miss (execute-once spans never pay the recording tax), not once
// its variant list is at capacity (avoids record/evict thrash on spans
// whose live-in state is genuinely polymorphic), and not once its
// attempts keep poisoning.
func (bc *blockCache) shouldRecord(c *ir.Code, span int) bool {
	k := spanKey{c, span}
	if !bc.warm[k] {
		bc.warm[k] = true
		return false
	}
	return len(bc.m[k]) < maxVariants && bc.bad[k] < maxRecordFailures
}

func (bc *blockCache) store(c *ir.Code, span int, r *blockRecording) {
	k := spanKey{c, span}
	if len(bc.m[k]) >= maxVariants {
		return
	}
	bc.m[k] = append(bc.m[k], r)
}

// bindKey identifies one (path, variable) pair the span has written.
type bindKey struct {
	envIdx int32
	name   string
}

// blockRecorder tapes one span execution. It implements
// heapgraph.Recorder for graph effects; the interpreter's varLabel and
// the VM's bind/unbind sites feed the env side.
type blockRecorder struct {
	in         *Interp
	envs       heapgraph.EnvSet
	startLabel heapgraph.Label
	epoch0     int64
	poisoned   bool

	varReads []varRead
	arrReads []arrRead
	tape     []tapeEvent

	// bound marks (env, name) pairs (un)bound in-span: later reads of
	// them are tape-determined and must not become validation probes.
	bound map[bindKey]bool
	// envIdx memoizes env-pointer → span-slice-index resolution.
	envIdx map[*heapgraph.Env]int32
}

func newBlockRecorder(in *Interp, envs heapgraph.EnvSet) *blockRecorder {
	return &blockRecorder{
		in:         in,
		envs:       envs,
		startLabel: in.g.LastLabel(),
		epoch0:     in.memoEpoch,
	}
}

// index resolves an environment to its position in the span's env set;
// an env outside the set poisons the recording (no cacheable opcode
// should ever touch one).
func (br *blockRecorder) index(e *heapgraph.Env) (int32, bool) {
	if br.envIdx == nil {
		br.envIdx = make(map[*heapgraph.Env]int32, len(br.envs))
	}
	if i, ok := br.envIdx[e]; ok {
		return i, true
	}
	for i, x := range br.envs {
		if x == e {
			br.envIdx[e] = int32(i)
			return int32(i), true
		}
	}
	br.poisoned = true
	return 0, false
}

func (br *blockRecorder) push(ev tapeEvent) {
	if br.poisoned {
		return
	}
	if len(br.tape) >= maxTapeEvents {
		br.poisoned = true
		return
	}
	br.tape = append(br.tape, ev)
}

// --- heapgraph.Recorder ---

func (br *blockRecorder) RecAlloc(kind heapgraph.ObjKind, name string, t sexpr.Type, val sexpr.Expr, line int, result heapgraph.Label) {
	br.push(tapeEvent{kind: evAlloc, objKind: kind, name: name, t: t, val: val, line: int32(line), a: result})
}

func (br *blockRecorder) RecEdge(from, to heapgraph.Label) {
	br.push(tapeEvent{kind: evEdge, a: from, b: to})
}

func (br *blockRecorder) RecSetElem(arr, val heapgraph.Label, key string) {
	if arr <= br.startLabel {
		// Mutating an array that predates the span: the write would have
		// to be revalidated against arbitrary later state. Don't cache.
		br.poisoned = true
		return
	}
	br.push(tapeEvent{kind: evSetElem, a: arr, b: val, name: key})
}

func (br *blockRecorder) RecArrayRead(arr heapgraph.Label, ver uint64) {
	if br.poisoned || arr > br.startLabel {
		// In-span arrays are tape-determined.
		return
	}
	for i := range br.arrReads {
		if br.arrReads[i].arr == arr {
			// Same array probed twice: versions agree unless the span
			// mutated it, which RecSetElem already poisons.
			return
		}
	}
	if len(br.arrReads) >= maxReadProbes {
		br.poisoned = true
		return
	}
	br.arrReads = append(br.arrReads, arrRead{arr: arr, ver: ver})
}

// --- env-side hooks (fed by varLabel and the VM's bind sites) ---

func (br *blockRecorder) readVar(e *heapgraph.Env, name string, got heapgraph.Label) {
	if br.poisoned {
		return
	}
	idx, ok := br.index(e)
	if !ok {
		return
	}
	if br.bound[bindKey{idx, name}] {
		return
	}
	for i := range br.varReads {
		if br.varReads[i].envIdx == idx && br.varReads[i].name == name {
			return // first probe already pins the value
		}
	}
	if len(br.varReads) >= maxReadProbes {
		br.poisoned = true
		return
	}
	br.varReads = append(br.varReads, varRead{envIdx: idx, name: name, label: got})
}

func (br *blockRecorder) markBound(idx int32, name string) {
	if br.bound == nil {
		br.bound = map[bindKey]bool{}
	}
	br.bound[bindKey{idx, name}] = true
}

func (br *blockRecorder) bindVar(e *heapgraph.Env, name string, l heapgraph.Label) {
	if br.poisoned {
		return
	}
	idx, ok := br.index(e)
	if !ok {
		return
	}
	br.push(tapeEvent{kind: evBind, envIdx: idx, name: name, a: l})
	br.markBound(idx, name)
}

func (br *blockRecorder) unbindVar(e *heapgraph.Env, name string) {
	if br.poisoned {
		return
	}
	idx, ok := br.index(e)
	if !ok {
		return
	}
	br.push(tapeEvent{kind: evUnbind, envIdx: idx, name: name})
	br.markBound(idx, name)
}

// finish converts the tape into a stored recording, unless poisoned or
// the memo epoch advanced mid-span (a shared memo filled: any recorded
// memo-hit label could be a fill artifact, so the whole tape is suspect).
func (br *blockRecorder) finish(c *ir.Code, span int) {
	if br.poisoned || br.in.memoEpoch != br.epoch0 {
		br.in.blockCache.bad[spanKey{c, span}]++
		return
	}
	br.in.blockCache.store(c, span, &blockRecording{
		fp:         scalarFingerprint(len(br.envs), br.epoch0, br.in.curFile),
		nEnvs:      len(br.envs),
		memoEpoch:  br.epoch0,
		curFile:    br.in.curFile,
		startLabel: br.startLabel,
		varReads:   br.varReads,
		arrReads:   br.arrReads,
		tape:       br.tape,
	})
}
