// Package interp is UChecker's AST-based symbolic execution engine
// (Section III-B of the paper).
//
// Starting from the root selected by the locality analysis (a PHP file or
// a function), the interpreter recursively evaluates AST nodes against a
// heap graph G and a set of per-path environments ℰ, forking ℰ at
// conditionals, inlining user-function calls context-sensitively, and
// recording every invocation of a file-upload sink together with the
// per-path labels of its source and destination expressions.
//
// Faithful to the paper's stated limitations, loops are unrolled to a
// small bound rather than modeled precisely, and execution is guarded by
// path/object budgets — exceeding them aborts with ErrBudgetExceeded,
// which reproduces the paper's "Cimy User Extra Fields" false negative
// (248K paths exhausting memory).
package interp

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/sexpr"
)

// ErrBudgetExceeded reports that symbolic execution outgrew its path or
// object budget. ErrPathBudget and ErrObjectBudget wrap it, so existing
// errors.Is(err, ErrBudgetExceeded) checks keep working while callers that
// need the failure taxonomy can distinguish which budget blew.
var (
	ErrBudgetExceeded = errors.New("interp: path/object budget exceeded")
	ErrPathBudget     = fmt.Errorf("%w (paths)", ErrBudgetExceeded)
	ErrObjectBudget   = fmt.Errorf("%w (objects)", ErrBudgetExceeded)
)

// Stats counts the work one RunRoot performed. The counters are
// deterministic for a given root and options (they count work, not
// time), which is what lets the scanner merge them across workers into
// a byte-identical per-app metric set. See DESIGN.md "Observability".
type Stats struct {
	// PathsForked counts environment clones at control-flow forks
	// (symbolic if/loop conditions, catch clauses).
	PathsForked int64
	// PathsPruned counts branch decisions resolved concretely — paths
	// that did NOT fork because the condition had a known truth value.
	// This is the fork-avoidance the paper's concrete evaluation buys.
	PathsPruned int64
	// PathsHeld counts suspended paths (returned/thrown/breaking)
	// carried past a statement boundary without re-execution.
	PathsHeld int64
	// BudgetChecks counts budget/cancellation checkpoints (statement and
	// loop-iteration boundaries).
	BudgetChecks int64
	// LiveEnvsPeak is the maximum number of live paths observed at any
	// checkpoint — the high-water mark MaxPaths guards.
	LiveEnvsPeak int64
	// PathCondSharedNodes counts the structure each symbolic fork shared
	// with its sibling instead of copying: the copy-on-write scope frames
	// plus the path-condition tail label (see heapgraph.Env.Clone). It is
	// the interpreter-side measure of the shared-tail representation —
	// forking is O(scope depth), and this counter grows with depth per
	// fork rather than with total bindings.
	PathCondSharedNodes int64
}

// Options configures the engine. The zero value selects defaults.
type Options struct {
	// MaxPaths bounds the number of live execution paths. Default 100000.
	MaxPaths int
	// MaxObjects bounds the heap-graph object count. Default 1500000.
	MaxObjects int
	// LoopUnroll is the number of iterations loops are unrolled to.
	// Default 2.
	LoopUnroll int
	// MaxCallDepth bounds user-function inlining depth. Default 24.
	MaxCallDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxPaths == 0 {
		o.MaxPaths = 100000
	}
	if o.MaxObjects == 0 {
		o.MaxObjects = 1500000
	}
	if o.LoopUnroll == 0 {
		o.LoopUnroll = 2
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 24
	}
	return o
}

// Halved returns the options with every budget cut in half (floored at 1)
// — one rung of the scanner's degradation ladder. Besides the raw
// path/object budgets, the loop-unroll bound and call-inlining depth are
// halved too, so a retry explores a coarser (and therefore cheaper) model
// rather than just aborting earlier on the same explosion.
func (o Options) Halved() Options {
	o = o.withDefaults()
	o.MaxPaths = max(1, o.MaxPaths/2)
	o.MaxObjects = max(1, o.MaxObjects/2)
	o.LoopUnroll = max(1, o.LoopUnroll/2)
	o.MaxCallDepth = max(1, o.MaxCallDepth/2)
	return o
}

// SinkHit records one symbolic execution of a file-upload sink on one path.
type SinkHit struct {
	// Sink is the built-in's lower-case name (move_uploaded_file,
	// file_put_contents, copy, rename).
	Sink string
	// Line is the source line of the call.
	Line int
	// File is the file containing the call.
	File string
	// Src and Dst label the uploaded-content expression and the
	// destination-path expression.
	Src, Dst heapgraph.Label
	// Env is a snapshot of the path's environment at the call.
	Env *heapgraph.Env
}

// Result is the outcome of symbolic execution.
type Result struct {
	// Graph is the heap graph shared by all paths.
	Graph *heapgraph.Graph
	// Envs are the final environments, one per completed path.
	Envs heapgraph.EnvSet
	// Sinks are all recorded sink invocations across all paths.
	Sinks []SinkHit
	// Paths is the number of final execution paths (Table III "Paths").
	Paths int
	// Stats counts the work performed (forks, pruned branches, budget
	// checkpoints, peak live paths) — deterministic per root.
	Stats Stats
	// Err is non-nil when execution aborted (budget exceeded); partial
	// results are still populated.
	Err error
}

// Interp is a single-use symbolic executor over one application.
type Interp struct {
	opts  Options
	g     *heapgraph.Graph
	funcs map[string]*phpast.FuncDecl
	files map[string]*phpast.File

	sinks     []SinkHit
	callStack []string
	curFile   string
	fileStack []string

	filesArr    heapgraph.Label                // the $_FILES pre-structured array object
	filesFields map[string]heapgraph.Label     // per-upload-key pre-structured arrays
	filesMulti  map[heapgraph.Label]multiField // multi-file form field objects
	superGlobs  map[string]heapgraph.Label

	budgetErr error
	stats     Stats

	// ctx carries the cancellation signal for the current RunRootCtx call;
	// steps counts overBudget checkpoints so the (mutex-guarded) ctx.Err is
	// only sampled every ctxCheckStride checkpoints.
	ctx   context.Context
	steps uint
}

// ctxCheckStride is how many budget checkpoints pass between context
// polls. Checkpoints fire at every statement and loop-iteration boundary,
// so even a large stride reacts to cancellation within microseconds.
const ctxCheckStride = 64

// New builds an interpreter for the given parsed files. All function and
// method declarations across the files are resolvable, mirroring PHP's
// global function table.
func New(files []*phpast.File, opts Options) *Interp {
	in := &Interp{
		opts:        opts.withDefaults(),
		g:           heapgraph.New(),
		funcs:       map[string]*phpast.FuncDecl{},
		files:       map[string]*phpast.File{},
		filesFields: map[string]heapgraph.Label{},
		superGlobs:  map[string]heapgraph.Label{},
	}
	for _, f := range files {
		in.files[f.Name] = f
		in.declare(f.Stmts)
	}
	return in
}

func (in *Interp) declare(stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				name := strings.ToLower(d.Name)
				if _, ok := in.funcs[name]; !ok {
					in.funcs[name] = d
				}
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					decl := &phpast.FuncDecl{P: m.P, Name: d.Name + "::" + m.Name, Params: m.Params, Body: m.Body, EndLine: m.EndLine}
					qual := strings.ToLower(d.Name + "::" + m.Name)
					if _, ok := in.funcs[qual]; !ok {
						in.funcs[qual] = decl
					}
					bare := strings.ToLower(m.Name)
					if _, ok := in.funcs[bare]; !ok {
						in.funcs[bare] = decl
					}
				}
			}
			return true
		})
	}
}

// Graph exposes the heap graph (for vulnerability modeling).
func (in *Interp) Graph() *heapgraph.Graph { return in.g }

// RunRoot symbolically executes a locality-analysis root and returns the
// collected result.
func (in *Interp) RunRoot(root *callgraph.Node) Result {
	return in.RunRootCtx(context.Background(), root)
}

// RunRootCtx is RunRoot with cancellation: path exploration polls ctx at
// statement and loop-iteration boundaries and aborts with Result.Err set
// to ctx.Err() (partial results are still populated, exactly as for a
// budget abort).
func (in *Interp) RunRootCtx(ctx context.Context, root *callgraph.Node) Result {
	in.ctx = ctx
	envs := heapgraph.EnvSet{heapgraph.NewEnv()}
	in.curFile = root.File
	switch root.Kind {
	case callgraph.FileNode:
		f := in.files[root.Name]
		if f != nil {
			in.curFile = f.Name
			envs = in.execStmts(topLevel(f.Stmts), envs)
		}
	case callgraph.FuncNode:
		if root.Func != nil {
			// Execute the function body with parameters bound to fresh
			// symbols (external inputs).
			env := envs[0]
			for _, p := range root.Func.Params {
				t := sexpr.Unknown
				if p.Type == "array" {
					t = sexpr.Array
				}
				env.Bind(p.Name, in.g.NewSymbol("s_param_"+p.Name, t, root.Func.P.Line))
			}
			envs = in.execStmts(root.Func.Body, envs)
		}
	}
	res := Result{
		Graph: in.g,
		Envs:  envs,
		Sinks: in.sinks,
		Paths: len(envs),
		Stats: in.stats,
		Err:   in.budgetErr,
	}
	return res
}

// topLevel filters out declarations, which execute only when called.
func topLevel(stmts []phpast.Stmt) []phpast.Stmt {
	out := make([]phpast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s.(type) {
		case *phpast.FuncDecl, *phpast.ClassDecl:
			continue
		}
		out = append(out, s)
	}
	return out
}

// overBudget checks and records budget exhaustion and context
// cancellation. Either condition aborts the exploration; the cause is
// preserved in budgetErr (ErrBudgetExceeded-wrapped vs ctx.Err()).
func (in *Interp) overBudget(envs heapgraph.EnvSet) bool {
	if in.budgetErr != nil {
		return true
	}
	in.steps++
	in.stats.BudgetChecks++
	if n := int64(len(envs)); n > in.stats.LiveEnvsPeak {
		in.stats.LiveEnvsPeak = n
	}
	if in.ctx != nil && in.steps%ctxCheckStride == 0 {
		if err := in.ctx.Err(); err != nil {
			in.budgetErr = err
			return true
		}
	}
	if len(envs) > in.opts.MaxPaths {
		in.budgetErr = fmt.Errorf("%w: %d paths (max %d)", ErrPathBudget, len(envs), in.opts.MaxPaths)
		return true
	}
	if in.g.NumObjects() > in.opts.MaxObjects {
		in.budgetErr = fmt.Errorf("%w: %d objects (max %d)", ErrObjectBudget, in.g.NumObjects(), in.opts.MaxObjects)
		return true
	}
	return false
}

// execStmts runs a statement sequence over all live paths; suspended paths
// (returned / breaking) are carried through untouched.
func (in *Interp) execStmts(stmts []phpast.Stmt, envs heapgraph.EnvSet) heapgraph.EnvSet {
	for _, s := range stmts {
		if in.overBudget(envs) {
			return envs
		}
		var live, held heapgraph.EnvSet
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		in.stats.PathsHeld += int64(len(held))
		if len(live) == 0 {
			return envs
		}
		envs = append(in.execStmt(s, live), held...)
	}
	return envs
}

func (in *Interp) execStmt(s phpast.Stmt, envs heapgraph.EnvSet) heapgraph.EnvSet {
	switch x := s.(type) {
	case *phpast.ExprStmt:
		envs, _ = in.eval(x.X, envs)
		return envs
	case *phpast.Echo:
		for _, a := range x.Args {
			envs, _ = in.eval(a, envs)
		}
		return envs
	case *phpast.Block:
		return in.execStmts(x.Stmts, envs)
	case *phpast.If:
		return in.execIf(x, envs)
	case *phpast.While:
		return in.execWhile(x, envs)
	case *phpast.DoWhile:
		return in.execDoWhile(x, envs)
	case *phpast.For:
		return in.execFor(x, envs)
	case *phpast.Foreach:
		return in.execForeach(x, envs)
	case *phpast.Switch:
		return in.execSwitch(x, envs)
	case *phpast.Return:
		var labels []heapgraph.Label
		if x.X != nil {
			envs, labels = in.eval(x.X, envs)
		}
		for i, e := range envs {
			if labels != nil {
				e.Returned = labels[i]
			} else {
				e.Returned = in.g.NewConcrete(sexpr.NullVal{}, x.P.Line)
			}
			e.Terminated = true
		}
		return envs
	case *phpast.Break:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		for _, e := range envs {
			e.BreakN = lvl
		}
		return envs
	case *phpast.Continue:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		for _, e := range envs {
			e.ContinueN = lvl
		}
		return envs
	case *phpast.Global:
		for _, e := range envs {
			for _, name := range x.Names {
				n := name
				e.ImportGlobal(n, func() heapgraph.Label {
					return in.g.NewSymbol("s_global_"+n, sexpr.Unknown, x.P.Line)
				})
			}
		}
		return envs
	case *phpast.StaticVars:
		for i, name := range x.Names {
			if x.Inits[i] != nil {
				var labels []heapgraph.Label
				envs, labels = in.eval(x.Inits[i], envs)
				for j, e := range envs {
					e.Bind(name, labels[j])
				}
			} else {
				for _, e := range envs {
					e.Bind(name, in.g.NewSymbol("s_static_"+name, sexpr.Unknown, x.P.Line))
				}
			}
		}
		return envs
	case *phpast.Unset:
		for _, v := range x.Vars {
			if vv, ok := v.(*phpast.Var); ok {
				for _, e := range envs {
					e.Unbind(vv.Name)
				}
			}
		}
		return envs
	case *phpast.Try:
		// The try body executes; catch bodies are alternate paths joined
		// afterwards (any statement may throw, so catches are reachable);
		// finally runs on every path.
		bodyEnvs := in.execStmts(x.Body.Stmts, envs)
		all := bodyEnvs
		for _, c := range x.Catches {
			catchEnvs := envs.CloneAll()
			in.stats.PathsForked += int64(len(catchEnvs))
			for _, e := range catchEnvs {
				in.stats.PathCondSharedNodes += int64(e.SharedFrames()) + 1
			}
			for _, e := range catchEnvs {
				if c.Var != "" {
					e.Bind(c.Var, in.g.NewSymbol("s_exc_"+c.Var, sexpr.Unknown, c.P.Line))
				}
			}
			all = append(all, in.execStmts(c.Body.Stmts, catchEnvs)...)
		}
		if x.Finally != nil {
			all = in.execStmts(x.Finally.Stmts, all)
		}
		return all
	case *phpast.Throw:
		envs, _ = in.eval(x.X, envs)
		for _, e := range envs {
			e.Terminated = true
		}
		return envs
	case *phpast.FuncDecl, *phpast.ClassDecl, *phpast.InlineHTML, *phpast.Nop:
		return envs
	default:
		return envs
	}
}

// execIf implements the paper's eval(if e then S1 else S2, G, ℰ): evaluate
// the condition once, copy ℰ for the two branches, extend reachability with
// the condition (negated for the false branch), execute both, and join.
// Conditions that evaluate to concrete booleans do not fork.
func (in *Interp) execIf(x *phpast.If, envs heapgraph.EnvSet) heapgraph.EnvSet {
	envs, condLabels := in.eval(x.Cond, envs)

	var out heapgraph.EnvSet
	var forkT heapgraph.EnvSet
	var forkTLabels []heapgraph.Label
	var forkF heapgraph.EnvSet
	var forkFLabels []heapgraph.Label

	for i, e := range envs {
		// Concrete condition: single branch, no fork.
		if c, ok := in.concreteBool(condLabels[i]); ok {
			in.stats.PathsPruned++
			if c {
				forkT = append(forkT, e)
				forkTLabels = append(forkTLabels, heapgraph.Null)
			} else {
				forkF = append(forkF, e)
				forkFLabels = append(forkFLabels, heapgraph.Null)
			}
			continue
		}
		in.stats.PathsForked++
		te := e.Clone()
		in.stats.PathCondSharedNodes += int64(te.SharedFrames()) + 1
		fe := e
		forkT = append(forkT, te)
		forkTLabels = append(forkTLabels, condLabels[i])
		forkF = append(forkF, fe)
		forkFLabels = append(forkFLabels, condLabels[i])
	}

	if len(forkT) > 0 {
		for i, e := range forkT {
			e.ER(in.g, forkTLabels[i], x.P.Line)
		}
		out = append(out, in.execStmts(x.Then.Stmts, forkT)...)
	}
	if len(forkF) > 0 {
		notShared := map[heapgraph.Label]heapgraph.Label{}
		for i, e := range forkF {
			if forkFLabels[i] != heapgraph.Null {
				not, ok := notShared[forkFLabels[i]]
				if !ok {
					not = in.g.NewOp("!", sexpr.Bool, x.P.Line)
					in.g.AddEdge(not, forkFLabels[i])
					notShared[forkFLabels[i]] = not
				}
				e.ER(in.g, not, x.P.Line)
			}
		}
		if x.Else != nil {
			out = append(out, in.execStmt(x.Else, forkF)...)
		} else {
			out = append(out, forkF...)
		}
	}
	return out
}

// concreteBool reports whether the object is a concrete value with a known
// truthiness (PHP semantics).
func (in *Interp) concreteBool(l heapgraph.Label) (bool, bool) {
	o := in.g.Find(l)
	if o == nil {
		return false, false
	}
	switch o.Kind {
	case heapgraph.KindConcrete:
		switch v := o.Val.(type) {
		case sexpr.BoolVal:
			return bool(v), true
		case sexpr.IntVal:
			return v != 0, true
		case sexpr.StrVal:
			return v != "" && v != "0", true
		case sexpr.NullVal:
			return false, true
		case sexpr.FloatVal:
			return v != 0, true
		}
	case heapgraph.KindArray:
		info := in.g.Array(l)
		return info != nil && len(info.Keys) > 0, true
	}
	return false, false
}

// consumeLoopControl decrements break/continue counters at a loop
// boundary; envs whose counters hit zero resume.
func consumeLoopControl(envs heapgraph.EnvSet) {
	for _, e := range envs {
		if e.BreakN > 0 {
			e.BreakN--
		} else if e.ContinueN > 0 {
			e.ContinueN--
			if e.ContinueN > 0 {
				// Multi-level continue behaves like break for outer levels.
				e.BreakN = e.ContinueN
				e.ContinueN = 0
			}
		}
	}
}

// execLoopPost evaluates for-loop post expressions at an iteration
// boundary. Paths that issued `continue` for this loop resume first (PHP
// runs the post clause after continue); paths that broke or returned skip
// it.
func (in *Interp) execLoopPost(post []phpast.Expr, envs heapgraph.EnvSet) heapgraph.EnvSet {
	if len(post) == 0 {
		return envs
	}
	clearContinues(envs)
	var live, held heapgraph.EnvSet
	for _, e := range envs {
		if e.Suspended() {
			held = append(held, e)
		} else {
			live = append(live, e)
		}
	}
	for _, p := range post {
		if len(live) == 0 {
			break
		}
		live, _ = in.eval(p, live)
	}
	return append(live, held...)
}

// clearContinues resumes envs that issued `continue` for this loop level.
func clearContinues(envs heapgraph.EnvSet) {
	for _, e := range envs {
		if e.ContinueN == 1 {
			e.ContinueN = 0
		}
	}
}

func (in *Interp) execWhile(x *phpast.While, envs heapgraph.EnvSet) heapgraph.EnvSet {
	return in.execCondLoop(x.Cond, x.Body.Stmts, nil, x.P.Line, envs, false)
}

func (in *Interp) execDoWhile(x *phpast.DoWhile, envs heapgraph.EnvSet) heapgraph.EnvSet {
	return in.execCondLoop(x.Cond, x.Body.Stmts, nil, x.P.Line, envs, true)
}

func (in *Interp) execFor(x *phpast.For, envs heapgraph.EnvSet) heapgraph.EnvSet {
	for _, e := range x.Init {
		envs, _ = in.eval(e, envs)
	}
	cond := andAll(x.Cond)
	var body []phpast.Stmt
	if x.Body != nil {
		body = x.Body.Stmts
	}
	return in.execCondLoop(cond, body, x.Post, x.P.Line, envs, false)
}

// execCondLoop unrolls a condition-guarded loop. Paths that take the
// condition's false branch exit the loop and are not re-forked on later
// iterations; paths still active after the unroll bound simply exit (the
// paper: "UChecker does not precisely model loops"). post holds for-loop
// post expressions, which run at every iteration boundary even after a
// `continue`. bodyFirst selects do-while semantics.
func (in *Interp) execCondLoop(cond phpast.Expr, body []phpast.Stmt, post []phpast.Expr, line int, envs heapgraph.EnvSet, bodyFirst bool) heapgraph.EnvSet {
	var exited heapgraph.EnvSet // took the false branch or broke out
	active := envs

	if bodyFirst && len(active) > 0 {
		active = in.execStmts(body, active)
		active = in.execLoopPost(post, active)
	}

	for i := 0; i < in.opts.LoopUnroll; i++ {
		if in.overBudget(active) || len(active) == 0 {
			break
		}
		clearContinues(active)
		var live, held heapgraph.EnvSet
		for _, e := range active {
			if e.BreakN > 0 {
				e.BreakN--
				if e.BreakN > 0 {
					held = append(held, e) // outer levels still unwinding
				} else {
					exited = append(exited, e)
				}
				continue
			}
			if e.Suspended() {
				held = append(held, e) // returned/thrown: carries through
				continue
			}
			live = append(live, e)
		}
		exited = append(exited, held...)
		if len(live) == 0 {
			active = nil
			break
		}
		var condLabels []heapgraph.Label
		live, condLabels = in.eval(cond, live)
		notShared := map[heapgraph.Label]heapgraph.Label{}
		var cont heapgraph.EnvSet
		for j, e := range live {
			if b, ok := in.concreteBool(condLabels[j]); ok {
				in.stats.PathsPruned++
				if b {
					cont = append(cont, e)
				} else {
					exited = append(exited, e)
				}
				continue
			}
			in.stats.PathsForked++
			te := e.Clone()
			in.stats.PathCondSharedNodes += int64(te.SharedFrames()) + 1
			te.ER(in.g, condLabels[j], line)
			cont = append(cont, te)
			not, ok := notShared[condLabels[j]]
			if !ok {
				not = in.g.NewOp("!", sexpr.Bool, line)
				in.g.AddEdge(not, condLabels[j])
				notShared[condLabels[j]] = not
			}
			e.ER(in.g, not, line)
			exited = append(exited, e)
		}
		cont = in.execStmts(body, cont)
		cont = in.execLoopPost(post, cont)
		active = cont
	}
	// Paths still active after the unroll bound exit without a constraint.
	// Only they still carry unconsumed break/continue flags — paths in
	// `exited` consumed theirs when the iteration split saw them.
	consumeLoopControl(active)
	return append(exited, active...)
}

func andAll(conds []phpast.Expr) phpast.Expr {
	if len(conds) == 0 {
		return &phpast.BoolLit{Value: true}
	}
	e := conds[0]
	for _, c := range conds[1:] {
		e = &phpast.Binary{P: e.Pos(), Op: "&&", L: e, R: c}
	}
	return e
}

func (in *Interp) execForeach(x *phpast.Foreach, envs heapgraph.EnvSet) heapgraph.EnvSet {
	var arrLabels []heapgraph.Label
	envs, arrLabels = in.eval(x.Arr, envs)
	// Park the array label on each path's operand stack so body forks keep
	// their copy aligned.
	pushTmp(envs, arrLabels)

	// When the array object is known, iterate its elements (bounded by the
	// unroll limit); otherwise bind fresh symbols and run the body once.
	for iter := 0; iter < in.opts.LoopUnroll; iter++ {
		if in.overBudget(envs) {
			break
		}
		clearContinues(envs)
		var live, held heapgraph.EnvSet
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			break
		}
		anyBound := false
		var iterating heapgraph.EnvSet
		for _, e := range live {
			arr := e.Tmp[len(e.Tmp)-1] // peek parked array label
			info := in.g.Array(arr)
			var keyLabel, valLabel heapgraph.Label
			switch {
			case arr == in.filesArr && in.filesArr != heapgraph.Null:
				// foreach over $_FILES (multi-file upload forms): one
				// symbolic iteration binding the shared pre-structured
				// upload family, keeping taint and the structured name.
				if iter > 0 {
					held = append(held, e)
					continue
				}
				keyLabel = in.g.NewSymbol("", sexpr.String, x.P.Line)
				valLabel = in.filesField("*", x.P.Line)
			case info != nil && iter < len(info.Keys):
				k := info.Keys[iter]
				keyLabel = in.g.NewConcrete(sexpr.StrVal(k), x.P.Line)
				valLabel = info.Elems[k]
			case info != nil:
				held = append(held, e) // array exhausted for this path
				continue
			default:
				if iter > 0 {
					held = append(held, e) // symbolic arrays iterate once
					continue
				}
				keyLabel = in.g.NewSymbol("", sexpr.Unknown, x.P.Line)
				valLabel = in.g.NewSymbol("", sexpr.Unknown, x.P.Line)
			}
			anyBound = true
			if x.Key != nil {
				if kv, ok := x.Key.(*phpast.Var); ok {
					e.Bind(kv.Name, keyLabel)
				}
			}
			iterating = append(in.assignTo(x.Val, heapgraph.EnvSet{e}, []heapgraph.Label{valLabel}), iterating...)
		}
		if !anyBound {
			envs = append(iterating, held...)
			break
		}
		iterating = in.execStmts(x.Body.Stmts, iterating)
		envs = append(iterating, held...)
	}
	popTmp(envs)
	consumeLoopControl(envs)
	return envs
}

// execSwitch desugars a switch into an if/elseif chain on equality with the
// subject; case fallthrough is approximated by treating each case body as
// independent (plus the default).
func (in *Interp) execSwitch(x *phpast.Switch, envs heapgraph.EnvSet) heapgraph.EnvSet {
	var chain phpast.Stmt
	// Build from the last case backwards.
	var defaultBody *phpast.Block
	for _, c := range x.Cases {
		if c.Cond == nil {
			defaultBody = &phpast.Block{P: c.P, Stmts: c.Stmts}
		}
	}
	var elseStmt phpast.Stmt
	if defaultBody != nil {
		elseStmt = defaultBody
	}
	for i := len(x.Cases) - 1; i >= 0; i-- {
		c := x.Cases[i]
		if c.Cond == nil {
			continue
		}
		cond := &phpast.Binary{P: c.P, Op: "==", L: x.Subject, R: c.Cond}
		chain = &phpast.If{P: c.P, Cond: cond, Then: &phpast.Block{P: c.P, Stmts: c.Stmts}, Else: elseStmt}
		elseStmt = chain
	}
	if chain == nil {
		if defaultBody != nil {
			envs = in.execStmts(defaultBody.Stmts, envs)
		}
		consumeLoopControl(envs) // switch consumes one break level
		return envs
	}
	envs = in.execStmt(chain, envs)
	consumeLoopControl(envs)
	return envs
}
