// Package interp is UChecker's AST-based symbolic execution engine
// (Section III-B of the paper).
//
// Starting from the root selected by the locality analysis (a PHP file or
// a function), the interpreter recursively evaluates AST nodes against a
// heap graph G and a set of per-path environments ℰ, forking ℰ at
// conditionals, inlining user-function calls context-sensitively, and
// recording every invocation of a file-upload sink together with the
// per-path labels of its source and destination expressions.
//
// Faithful to the paper's stated limitations, loops are unrolled to a
// small bound rather than modeled precisely, and execution is guarded by
// path/object budgets — exceeding them aborts with ErrBudgetExceeded,
// which reproduces the paper's "Cimy User Extra Fields" false negative
// (248K paths exhausting memory).
package interp

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/sexpr"
	"repro/internal/summary"
)

// ErrBudgetExceeded reports that symbolic execution outgrew its path or
// object budget. ErrPathBudget and ErrObjectBudget wrap it, so existing
// errors.Is(err, ErrBudgetExceeded) checks keep working while callers that
// need the failure taxonomy can distinguish which budget blew.
var (
	ErrBudgetExceeded = errors.New("interp: path/object budget exceeded")
	ErrPathBudget     = fmt.Errorf("%w (paths)", ErrBudgetExceeded)
	ErrObjectBudget   = fmt.Errorf("%w (objects)", ErrBudgetExceeded)
)

// Stats counts the work one RunRoot performed. The counters are
// deterministic for a given root and options (they count work, not
// time), which is what lets the scanner merge them across workers into
// a byte-identical per-app metric set. See DESIGN.md "Observability".
type Stats struct {
	// PathsForked counts environment clones at control-flow forks
	// (symbolic if/loop conditions, catch clauses).
	PathsForked int64
	// PathsPruned counts branch decisions resolved concretely — paths
	// that did NOT fork because the condition had a known truth value.
	// This is the fork-avoidance the paper's concrete evaluation buys.
	PathsPruned int64
	// PathsHeld counts suspended paths (returned/thrown/breaking)
	// carried past a statement boundary without re-execution.
	PathsHeld int64
	// BudgetChecks counts budget/cancellation checkpoints (statement and
	// loop-iteration boundaries).
	BudgetChecks int64
	// LiveEnvsPeak is the maximum number of live paths observed at any
	// checkpoint — the high-water mark MaxPaths guards.
	LiveEnvsPeak int64
	// PathCondSharedNodes counts the structure each symbolic fork shared
	// with its sibling instead of copying: the copy-on-write scope frames
	// plus the path-condition tail label (see heapgraph.Env.Clone). It is
	// the interpreter-side measure of the shared-tail representation —
	// forking is O(scope depth), and this counter grows with depth per
	// fork rather than with total bindings.
	PathCondSharedNodes int64
	// IRInstructionsExecuted counts bytecode instructions dispatched by
	// the VM engine (zero under the tree engine). Replayed block-cache
	// spans contribute their static span size, exactly as an execution
	// would.
	IRInstructionsExecuted int64
	// VMDispatchLoops counts VM dispatch-loop entries — one per
	// statement span executed (zero under the tree engine). Replayed
	// spans count one loop each, exactly as an execution would.
	VMDispatchLoops int64
	// BlockCacheHits counts statement spans replayed from the VM's
	// block-fact cache instead of dispatched (zero under the tree engine).
	BlockCacheHits int64
	// BlockCacheMisses counts cacheable spans that had to execute and
	// record because no stored recording's live-in fingerprint matched
	// (zero under the tree engine).
	BlockCacheMisses int64
	// SummaryInstantiated counts call sites answered by a function
	// summary (trivial instantiation or merge-eligible inlining) under
	// Options.Summaries. Zero in inline mode.
	SummaryInstantiated int64
	// SummaryEscapedCallees counts call sites whose callee's summary
	// escaped, forcing a plain inline. Zero in inline mode.
	SummaryEscapedCallees int64
	// PathsAvoided counts environments dropped by statement-boundary
	// path merging: paths whose observable state matched a surviving
	// path's exactly and whose pending conditions were independent
	// single-use literals. Zero in inline mode.
	PathsAvoided int64
}

// EngineInvariant returns the stats with engine-mechanical counters
// (instruction/dispatch counts, which only the VM engine produces) zeroed,
// leaving exactly the fields the two engines must agree on.
func (s Stats) EngineInvariant() Stats {
	s.IRInstructionsExecuted = 0
	s.VMDispatchLoops = 0
	s.BlockCacheHits = 0
	s.BlockCacheMisses = 0
	return s
}

// Options configures the engine. The zero value selects defaults.
type Options struct {
	// MaxPaths bounds the number of live execution paths. Default 100000.
	MaxPaths int
	// MaxObjects bounds the heap-graph object count. Default 1500000.
	MaxObjects int
	// LoopUnroll is the number of iterations loops are unrolled to.
	// Default 2.
	LoopUnroll int
	// MaxCallDepth bounds user-function inlining depth. Default 24.
	MaxCallDepth int
	// NoBlockCache disables the VM engine's block-fact cache (replay of
	// recorded span effects). The cache is semantically invisible — it
	// exists as an option only for ablation benchmarks and the
	// counter-parity regression tests. Ignored by the tree engine.
	NoBlockCache bool
	// Summaries switches the call path to the summary interprocedural
	// strategy: trivial callees instantiate without a frame, and
	// summarized frames merge observably equivalent paths at statement
	// boundaries. nil (the default) keeps the inline-everything
	// behavior. The VM's block-fact cache is disabled while summaries
	// are active (merging changes the env-set shapes the cache keys on).
	Summaries *summary.Set
}

func (o Options) withDefaults() Options {
	if o.MaxPaths == 0 {
		o.MaxPaths = 100000
	}
	if o.MaxObjects == 0 {
		o.MaxObjects = 1500000
	}
	if o.LoopUnroll == 0 {
		o.LoopUnroll = 2
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 24
	}
	return o
}

// SinkHit records one symbolic execution of a file-upload sink on one path.
type SinkHit struct {
	// Sink is the built-in's lower-case name (move_uploaded_file,
	// file_put_contents, copy, rename).
	Sink string
	// Line is the source line of the call.
	Line int
	// File is the file containing the call.
	File string
	// Src and Dst label the uploaded-content expression and the
	// destination-path expression.
	Src, Dst heapgraph.Label
	// Env is a snapshot of the path's environment at the call.
	Env *heapgraph.Env
}

// Result is the outcome of symbolic execution.
type Result struct {
	// Graph is the heap graph shared by all paths.
	Graph *heapgraph.Graph
	// Envs are the final environments, one per completed path.
	Envs heapgraph.EnvSet
	// Sinks are all recorded sink invocations across all paths.
	Sinks []SinkHit
	// Paths is the number of final execution paths (Table III "Paths").
	Paths int
	// Stats counts the work performed (forks, pruned branches, budget
	// checkpoints, peak live paths) — deterministic per root.
	Stats Stats
	// Err is non-nil when execution aborted (budget exceeded); partial
	// results are still populated.
	Err error
}

// Interp is a single-use symbolic executor over one application.
type Interp struct {
	opts  Options
	g     *heapgraph.Graph
	funcs map[string]*phpast.FuncDecl
	files map[string]*phpast.File

	sinks     []SinkHit
	callStack []string
	curFile   string
	fileStack []string

	filesArr    heapgraph.Label                // the $_FILES pre-structured array object
	filesFields map[string]heapgraph.Label     // per-upload-key pre-structured arrays
	filesMulti  map[heapgraph.Label]multiField // multi-file form field objects
	superGlobs  map[string]heapgraph.Label

	budgetErr error
	stats     Stats

	// memoEpoch counts fills of the process-wide memo tables (superGlobs,
	// filesArr, filesFields, filesMulti). A block-cache recording is only
	// valid at the exact epoch it was taped at: equal epoch means the
	// append-only memos are bit-identical to record time.
	memoEpoch int64
	// rec is the active block-cache recorder, non-nil only while the VM is
	// taping a cacheable span; interp-side env read/bind sites feed it.
	rec *blockRecorder
	// blockCache memoizes cacheable statement spans' effects for this
	// root's graph. Lazily created by the VM engine.
	blockCache *blockCache

	// mergeStack tracks the summarized scopes currently being inlined;
	// the top frame supplies the dead-variable and merge-symbol sets
	// the statement-boundary path merger consults. Empty in inline
	// mode and inside escaped callees.
	mergeStack []mergeFrame

	// ctx carries the cancellation signal for the current RunRootCtx call;
	// steps counts overBudget checkpoints so the (mutex-guarded) ctx.Err is
	// only sampled every ctxCheckStride checkpoints.
	ctx   context.Context
	steps uint
}

// ctxCheckStride is how many budget checkpoints pass between context
// polls. Checkpoints fire at every statement and loop-iteration boundary,
// so even a large stride reacts to cancellation within microseconds.
const ctxCheckStride = 64

// New builds an interpreter for the given parsed files. All function and
// method declarations across the files are resolvable, mirroring PHP's
// global function table.
func New(files []*phpast.File, opts Options) *Interp {
	in := &Interp{
		opts:        opts.withDefaults(),
		g:           heapgraph.New(),
		funcs:       map[string]*phpast.FuncDecl{},
		files:       map[string]*phpast.File{},
		filesFields: map[string]heapgraph.Label{},
		superGlobs:  map[string]heapgraph.Label{},
	}
	for _, f := range files {
		in.files[f.Name] = f
		in.declare(f.Stmts)
	}
	return in
}

func (in *Interp) declare(stmts []phpast.Stmt) {
	for _, s := range stmts {
		phpast.Walk(s, func(n phpast.Node) bool {
			switch d := n.(type) {
			case *phpast.FuncDecl:
				name := strings.ToLower(d.Name)
				if _, ok := in.funcs[name]; !ok {
					in.funcs[name] = d
				}
			case *phpast.ClassDecl:
				for _, m := range d.Methods {
					decl := &phpast.FuncDecl{P: m.P, Name: d.Name + "::" + m.Name, Params: m.Params, Body: m.Body, EndLine: m.EndLine}
					qual := strings.ToLower(d.Name + "::" + m.Name)
					if _, ok := in.funcs[qual]; !ok {
						in.funcs[qual] = decl
					}
					bare := strings.ToLower(m.Name)
					if _, ok := in.funcs[bare]; !ok {
						in.funcs[bare] = decl
					}
				}
			}
			return true
		})
	}
}

// Graph exposes the heap graph (for vulnerability modeling).
func (in *Interp) Graph() *heapgraph.Graph { return in.g }

// RunRoot symbolically executes a locality-analysis root and returns the
// collected result.
func (in *Interp) RunRoot(root *callgraph.Node) Result {
	return in.RunRootCtx(context.Background(), root)
}

// RunRootCtx is RunRoot with cancellation: path exploration polls ctx at
// statement and loop-iteration boundaries and aborts with Result.Err set
// to ctx.Err() (partial results are still populated, exactly as for a
// budget abort).
func (in *Interp) RunRootCtx(ctx context.Context, root *callgraph.Node) Result {
	in.ctx = ctx
	envs := heapgraph.EnvSet{heapgraph.NewEnv()}
	in.curFile = root.File
	switch root.Kind {
	case callgraph.FileNode:
		f := in.files[root.Name]
		if f != nil {
			in.curFile = f.Name
			envs = in.execStmts(topLevel(f.Stmts), envs)
		}
	case callgraph.FuncNode:
		if root.Func != nil {
			// Execute the function body with parameters bound to fresh
			// symbols (external inputs).
			env := envs[0]
			for _, p := range root.Func.Params {
				t := sexpr.Unknown
				if p.Type == "array" {
					t = sexpr.Array
				}
				env.Bind(p.Name, in.g.NewSymbol("s_param_"+p.Name, t, root.Func.P.Line))
			}
			pop := in.pushMergeScope(strings.ToLower(root.Func.Name), envs)
			envs = in.execStmts(root.Func.Body, envs)
			pop()
		}
	}
	res := Result{
		Graph: in.g,
		Envs:  envs,
		Sinks: in.sinks,
		Paths: len(envs),
		Stats: in.stats,
		Err:   in.budgetErr,
	}
	return res
}

// topLevel filters out declarations, which execute only when called.
func topLevel(stmts []phpast.Stmt) []phpast.Stmt {
	out := make([]phpast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		switch s.(type) {
		case *phpast.FuncDecl, *phpast.ClassDecl:
			continue
		}
		out = append(out, s)
	}
	return out
}

// overBudget checks and records budget exhaustion and context
// cancellation. Either condition aborts the exploration; the cause is
// preserved in budgetErr (ErrBudgetExceeded-wrapped vs ctx.Err()).
func (in *Interp) overBudget(envs heapgraph.EnvSet) bool {
	if in.budgetErr != nil {
		return true
	}
	in.steps++
	in.stats.BudgetChecks++
	if n := int64(len(envs)); n > in.stats.LiveEnvsPeak {
		in.stats.LiveEnvsPeak = n
	}
	if in.ctx != nil && in.steps%ctxCheckStride == 0 {
		if err := in.ctx.Err(); err != nil {
			in.budgetErr = err
			return true
		}
	}
	if len(envs) > in.opts.MaxPaths {
		in.budgetErr = fmt.Errorf("%w: %d paths (max %d)", ErrPathBudget, len(envs), in.opts.MaxPaths)
		return true
	}
	if in.g.NumObjects() > in.opts.MaxObjects {
		in.budgetErr = fmt.Errorf("%w: %d objects (max %d)", ErrObjectBudget, in.g.NumObjects(), in.opts.MaxObjects)
		return true
	}
	return false
}

// execStmts runs a statement sequence over all live paths; suspended paths
// (returned / breaking) are carried through untouched.
func (in *Interp) execStmts(stmts []phpast.Stmt, envs heapgraph.EnvSet) heapgraph.EnvSet {
	for _, s := range stmts {
		if in.opts.Summaries != nil {
			envs = in.mergeBoundary(envs)
		}
		if in.overBudget(envs) {
			return envs
		}
		var live, held heapgraph.EnvSet
		for _, e := range envs {
			if e.Suspended() {
				held = append(held, e)
			} else {
				live = append(live, e)
			}
		}
		in.stats.PathsHeld += int64(len(held))
		if len(live) == 0 {
			return envs
		}
		envs = append(in.execStmt(s, live), held...)
	}
	return envs
}

func (in *Interp) execStmt(s phpast.Stmt, envs heapgraph.EnvSet) heapgraph.EnvSet {
	switch x := s.(type) {
	case *phpast.ExprStmt:
		envs, _ = in.eval(x.X, envs)
		return envs
	case *phpast.Echo:
		for _, a := range x.Args {
			envs, _ = in.eval(a, envs)
		}
		return envs
	case *phpast.Block:
		return in.execStmts(x.Stmts, envs)
	case *phpast.If:
		return in.execIf(x, envs)
	case *phpast.While:
		return in.execWhile(x, envs)
	case *phpast.DoWhile:
		return in.execDoWhile(x, envs)
	case *phpast.For:
		return in.execFor(x, envs)
	case *phpast.Foreach:
		return in.execForeach(x, envs)
	case *phpast.Switch:
		return in.execSwitch(x, envs)
	case *phpast.Return:
		var labels []heapgraph.Label
		if x.X != nil {
			envs, labels = in.eval(x.X, envs)
		}
		for i, e := range envs {
			if labels != nil {
				e.Returned = labels[i]
			} else {
				e.Returned = in.g.NewConcrete(sexpr.NullVal{}, x.P.Line)
			}
			e.Terminated = true
		}
		return envs
	case *phpast.Break:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		for _, e := range envs {
			e.BreakN = lvl
		}
		return envs
	case *phpast.Continue:
		lvl := x.Level
		if lvl == 0 {
			lvl = 1
		}
		for _, e := range envs {
			e.ContinueN = lvl
		}
		return envs
	case *phpast.Global:
		for _, e := range envs {
			for _, name := range x.Names {
				n := name
				e.ImportGlobal(n, func() heapgraph.Label {
					return in.g.NewSymbol("s_global_"+n, sexpr.Unknown, x.P.Line)
				})
			}
		}
		return envs
	case *phpast.StaticVars:
		for i, name := range x.Names {
			if x.Inits[i] != nil {
				var labels []heapgraph.Label
				envs, labels = in.eval(x.Inits[i], envs)
				for j, e := range envs {
					e.Bind(name, labels[j])
				}
			} else {
				for _, e := range envs {
					e.Bind(name, in.g.NewSymbol("s_static_"+name, sexpr.Unknown, x.P.Line))
				}
			}
		}
		return envs
	case *phpast.Unset:
		for _, v := range x.Vars {
			if vv, ok := v.(*phpast.Var); ok {
				for _, e := range envs {
					e.Unbind(vv.Name)
				}
			}
		}
		return envs
	case *phpast.Try:
		catches := make([]catchClause, len(x.Catches))
		for i, c := range x.Catches {
			body := c.Body.Stmts
			catches[i] = catchClause{varName: c.Var, line: c.P.Line, run: func(es heapgraph.EnvSet) heapgraph.EnvSet {
				return in.execStmts(body, es)
			}}
		}
		var fin bodyFn
		if x.Finally != nil {
			fin = func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execStmts(x.Finally.Stmts, es) }
		}
		return in.tryJoin(envs, func(es heapgraph.EnvSet) heapgraph.EnvSet {
			return in.execStmts(x.Body.Stmts, es)
		}, catches, fin)
	case *phpast.Throw:
		envs, _ = in.eval(x.X, envs)
		for _, e := range envs {
			e.Terminated = true
		}
		return envs
	case *phpast.FuncDecl, *phpast.ClassDecl, *phpast.InlineHTML, *phpast.Nop:
		return envs
	default:
		return envs
	}
}

// execIf evaluates the condition once and delegates the fork/join to the
// shared branch core (controlflow.go).
func (in *Interp) execIf(x *phpast.If, envs heapgraph.EnvSet) heapgraph.EnvSet {
	envs, condLabels := in.eval(x.Cond, envs)
	var runElse bodyFn
	if x.Else != nil {
		runElse = func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execStmt(x.Else, es) }
	}
	return in.branch(envs, condLabels, x.P.Line, func(es heapgraph.EnvSet) heapgraph.EnvSet {
		return in.execStmts(x.Then.Stmts, es)
	}, runElse)
}

// concreteBool reports whether the object is a concrete value with a known
// truthiness (PHP semantics).
func (in *Interp) concreteBool(l heapgraph.Label) (bool, bool) {
	o := in.g.Find(l)
	if o == nil {
		return false, false
	}
	switch o.Kind {
	case heapgraph.KindConcrete:
		switch v := o.Val.(type) {
		case sexpr.BoolVal:
			return bool(v), true
		case sexpr.IntVal:
			return v != 0, true
		case sexpr.StrVal:
			return v != "" && v != "0", true
		case sexpr.NullVal:
			return false, true
		case sexpr.FloatVal:
			return v != 0, true
		}
	case heapgraph.KindArray:
		info := in.g.Array(l)
		return info != nil && len(info.Keys) > 0, true
	}
	return false, false
}

// consumeLoopControl decrements break/continue counters at a loop
// boundary; envs whose counters hit zero resume.
func consumeLoopControl(envs heapgraph.EnvSet) {
	for _, e := range envs {
		if e.BreakN > 0 {
			e.BreakN--
		} else if e.ContinueN > 0 {
			e.ContinueN--
			if e.ContinueN > 0 {
				// Multi-level continue behaves like break for outer levels.
				e.BreakN = e.ContinueN
				e.ContinueN = 0
			}
		}
	}
}

// execLoopPost evaluates for-loop post expressions at an iteration
// boundary. Paths that issued `continue` for this loop resume first (PHP
// runs the post clause after continue); paths that broke or returned skip
// it.
func (in *Interp) execLoopPost(post []phpast.Expr, envs heapgraph.EnvSet) heapgraph.EnvSet {
	if len(post) == 0 {
		return envs
	}
	clearContinues(envs)
	var live, held heapgraph.EnvSet
	for _, e := range envs {
		if e.Suspended() {
			held = append(held, e)
		} else {
			live = append(live, e)
		}
	}
	for _, p := range post {
		if len(live) == 0 {
			break
		}
		live, _ = in.eval(p, live)
	}
	return append(live, held...)
}

// clearContinues resumes envs that issued `continue` for this loop level.
func clearContinues(envs heapgraph.EnvSet) {
	for _, e := range envs {
		if e.ContinueN == 1 {
			e.ContinueN = 0
		}
	}
}

func (in *Interp) execWhile(x *phpast.While, envs heapgraph.EnvSet) heapgraph.EnvSet {
	return in.execCondLoop(x.Cond, x.Body.Stmts, nil, x.P.Line, envs, false)
}

func (in *Interp) execDoWhile(x *phpast.DoWhile, envs heapgraph.EnvSet) heapgraph.EnvSet {
	return in.execCondLoop(x.Cond, x.Body.Stmts, nil, x.P.Line, envs, true)
}

func (in *Interp) execFor(x *phpast.For, envs heapgraph.EnvSet) heapgraph.EnvSet {
	for _, e := range x.Init {
		envs, _ = in.eval(e, envs)
	}
	cond := andAll(x.Cond)
	var body []phpast.Stmt
	if x.Body != nil {
		body = x.Body.Stmts
	}
	return in.execCondLoop(cond, body, x.Post, x.P.Line, envs, false)
}

// execCondLoop adapts the AST loop shape to the shared condLoop core
// (controlflow.go), which owns unrolling, break/continue accounting, and
// the per-iteration condition fork.
func (in *Interp) execCondLoop(cond phpast.Expr, body []phpast.Stmt, post []phpast.Expr, line int, envs heapgraph.EnvSet, bodyFirst bool) heapgraph.EnvSet {
	return in.condLoop(
		func(es heapgraph.EnvSet) (heapgraph.EnvSet, []heapgraph.Label) { return in.eval(cond, es) },
		func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execStmts(body, es) },
		func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execLoopPost(post, es) },
		line, envs, bodyFirst)
}

func andAll(conds []phpast.Expr) phpast.Expr {
	if len(conds) == 0 {
		return &phpast.BoolLit{Value: true}
	}
	e := conds[0]
	for _, c := range conds[1:] {
		e = &phpast.Binary{P: e.Pos(), Op: "&&", L: e, R: c}
	}
	return e
}

func (in *Interp) execForeach(x *phpast.Foreach, envs heapgraph.EnvSet) heapgraph.EnvSet {
	var arrLabels []heapgraph.Label
	envs, arrLabels = in.eval(x.Arr, envs)
	keyName := ""
	hasKey := false
	if x.Key != nil {
		if kv, ok := x.Key.(*phpast.Var); ok {
			keyName, hasKey = kv.Name, true
		}
	}
	return in.foreachLoop(envs, arrLabels, x.P.Line, keyName, hasKey,
		func(e *heapgraph.Env, val heapgraph.Label) heapgraph.EnvSet {
			return in.assignTo(x.Val, heapgraph.EnvSet{e}, []heapgraph.Label{val})
		},
		func(es heapgraph.EnvSet) heapgraph.EnvSet { return in.execStmts(x.Body.Stmts, es) })
}

// execSwitch desugars a switch into an if/elseif chain on equality with the
// subject; case fallthrough is approximated by treating each case body as
// independent (plus the default).
func (in *Interp) execSwitch(x *phpast.Switch, envs heapgraph.EnvSet) heapgraph.EnvSet {
	var chain phpast.Stmt
	// Build from the last case backwards.
	var defaultBody *phpast.Block
	for _, c := range x.Cases {
		if c.Cond == nil {
			defaultBody = &phpast.Block{P: c.P, Stmts: c.Stmts}
		}
	}
	var elseStmt phpast.Stmt
	if defaultBody != nil {
		elseStmt = defaultBody
	}
	for i := len(x.Cases) - 1; i >= 0; i-- {
		c := x.Cases[i]
		if c.Cond == nil {
			continue
		}
		cond := &phpast.Binary{P: c.P, Op: "==", L: x.Subject, R: c.Cond}
		chain = &phpast.If{P: c.P, Cond: cond, Then: &phpast.Block{P: c.P, Stmts: c.Stmts}, Else: elseStmt}
		elseStmt = chain
	}
	if chain == nil {
		if defaultBody != nil {
			envs = in.execStmts(defaultBody.Stmts, envs)
		}
		consumeLoopControl(envs) // switch consumes one break level
		return envs
	}
	envs = in.execStmt(chain, envs)
	consumeLoopControl(envs)
	return envs
}
