package interp

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
)

// engineFingerprint renders everything observable about a Result into a
// deterministic string: path count, object count, stats, per-path
// condition labels and s-expressions, and every sink hit. Labels are
// included verbatim — the two engines must allocate heap-graph nodes in
// the same order, not merely produce isomorphic graphs.
func engineFingerprint(res Result) string {
	s := fmt.Sprintf("paths=%d objects=%d stats=%+v err=%v\n",
		res.Paths, res.Graph.NumObjects(), res.Stats.EngineInvariant(), res.Err)
	for _, e := range res.Envs {
		s += fmt.Sprintf("env cur=%d cond=%s tmp=%v ret=%d term=%t\n",
			e.Cur, sexpr.Format(res.Graph.ToSexpr(e.Cur)), e.Tmp, e.Returned, e.Terminated)
	}
	for _, h := range res.Sinks {
		s += fmt.Sprintf("sink %s@%s:%d src=%d:%s dst=%d:%s cond=%s\n",
			h.Sink, h.File, h.Line,
			h.Src, sexpr.Format(res.Graph.ToSexpr(h.Src)),
			h.Dst, sexpr.Format(res.Graph.ToSexpr(h.Dst)),
			sexpr.Format(res.Graph.ToSexpr(h.Env.Cur)))
	}
	return s
}

// runEngines executes the same root under both engines over independently
// parsed copies of the sources and returns both results.
func runEngines(t *testing.T, srcs map[string]string, mkRoot func([]*phpast.File) *callgraph.Node, opts Options) (tree, vm Result) {
	t.Helper()
	parse := func() []*phpast.File {
		var files []*phpast.File
		// Parse in deterministic name order so declaration precedence
		// matches between the two engine runs.
		for _, name := range sortedKeys(srcs) {
			f, errs := phpparser.Parse(name, srcs[name])
			if len(errs) > 0 {
				t.Fatalf("parse %s: %v", name, errs)
			}
			files = append(files, f)
		}
		return files
	}
	treeFiles := parse()
	vmFiles := parse()
	tree = NewEngineFactory(EngineTree, treeFiles).New(opts).Run(context.Background(), mkRoot(treeFiles))
	vm = NewEngineFactory(EngineVM, vmFiles).New(opts).Run(context.Background(), mkRoot(vmFiles))
	return tree, vm
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fileRoot(name string) func([]*phpast.File) *callgraph.Node {
	return func([]*phpast.File) *callgraph.Node {
		return &callgraph.Node{Kind: callgraph.FileNode, Name: name, File: name}
	}
}

// assertEnginesAgree runs a single file-level root under both engines and
// compares the full fingerprint.
func assertEnginesAgree(t *testing.T, src string, opts Options) {
	t.Helper()
	assertEnginesAgreeMulti(t, map[string]string{"test.php": src}, fileRoot("test.php"), opts)
}

func assertEnginesAgreeMulti(t *testing.T, srcs map[string]string, mkRoot func([]*phpast.File) *callgraph.Node, opts Options) {
	t.Helper()
	tree, vm := runEngines(t, srcs, mkRoot, opts)
	tf, vf := engineFingerprint(tree), engineFingerprint(vm)
	if tf != vf {
		t.Errorf("engines disagree:\n--- tree ---\n%s--- vm ---\n%s", tf, vf)
	}
	if vm.Stats.IRInstructionsExecuted == 0 {
		t.Errorf("vm executed zero instructions — root did not dispatch bytecode")
	}
}

func TestEngineEquivalenceBranching(t *testing.T) {
	assertEnginesAgree(t, `<?php
$a = 55;
$a = $b + $a;
if ($a > 10) {
	$a = 22 - $b;
} elseif ($a < -4) {
	$a = 1;
} else {
	$a = 88;
}
if (true) { $c = 1; } else { $c = 2; }
if ($c) { $d = 3; }
`, Options{})
}

func TestEngineEquivalenceLoops(t *testing.T) {
	assertEnginesAgree(t, `<?php
$i = 0;
while ($i < $n) {
	$i++;
	if ($i == $m) { continue; }
	if ($i > 100) { break; }
	$sum = $sum + $i;
}
do { $j = $j . "x"; } while ($cond);
for ($k = 0; $k < 3; $k++) { $acc = $acc + $k; }
for (;;) { break; }
`, Options{})
}

func TestEngineEquivalenceForeachSwitch(t *testing.T) {
	assertEnginesAgree(t, `<?php
$arr = array("a" => 1, "b" => 2, 7);
foreach ($arr as $k => $v) { $t = $t + $v; }
foreach ($unknown as $x) { $u = $x; }
foreach ($_FILES as $file) { $n = $file["name"]; }
switch ($mode) {
case "a": $r = 1; break;
case "b": $r = 2; break;
default: $r = 3;
}
switch ($x) { default: $q = 9; }
`, Options{})
}

// TestEngineEquivalenceBlockForms pins the OpBlock-wrapped statement
// shapes: bare blocks (also nested, also suspending mid-block), a
// default-only switch whose body is OpBlock + OpConsumeLoop, and a
// default-only switch with a break — the span/checkpoint attribution
// (PathsHeld, BudgetChecks) must match the tree walker's statement
// partitioning exactly, which the fingerprint's stats comparison pins.
func TestEngineEquivalenceBlockForms(t *testing.T) {
	assertEnginesAgree(t, `<?php
{
	$a = 1;
	{
		$b = $a + 1;
		{ $c = $b . "x"; }
	}
	$d = $c;
}
switch ($m) { default: $q = 9; }
switch ($n) {
default:
	$r = 1;
	break;
	$r = 2;
}
while ($w < 2) {
	{
		$w = $w + 1;
		break;
		$dead = 1;
	}
	$after = 1;
}
`, Options{})
}

func TestEngineEquivalenceCallsAndSinks(t *testing.T) {
	assertEnginesAgree(t, `<?php
function ext($name, $sep = ".") {
	$parts = explode($sep, $name);
	return end($parts);
}
function recurse($n) { return recurse($n - 1); }
class Up {
	function dest($d) { return $d . "/up"; }
}
$name = $_FILES["f"]["name"];
$tmp = $_FILES["f"]["tmp_name"];
$e = ext($name);
$r = recurse(3);
$o = new Up();
$d = $o->dest($dir) . "/" . $name;
if ($e != "php") {
	move_uploaded_file($tmp, $d);
	copy($tmp, $d);
	file_put_contents($d, $body);
}
$fn = $cb;
$fn($name);
call_user_func("ext", $name);
Up::dest($base);
`, Options{})
}

func TestEngineEquivalenceExprForms(t *testing.T) {
	assertEnginesAgree(t, `<?php
$s = "pre $mid post";
$s2 = "";
$neg = -$v;
$not = !$v;
$t = $c ? $a : $b;
$t2 = $c ?: $b;
$n = (int)$raw;
$str = (string)5;
$pre = ++$i;
$post = $j--;
$iss = isset($a, $b["k"]);
$emp = empty($a);
$pf = $obj->prop;
$sp = Cls::$sprop;
$cc = Cls::CONSTVAL;
$kf = PATHINFO_EXTENSION;
$uk = SOME_CONST;
$dir = __DIR__;
$lst = pathinfo($path);
list($x, $y) = $pair;
$arr["k"]["j"] = 5;
$arr[] = 6;
$obj2->field = 7;
$cl = function ($z) { return $z; };
print "x";
$glob = $GLOBALS;
`, Options{})
}

func TestEngineEquivalenceStmtForms(t *testing.T) {
	assertEnginesAgree(t, `<?php
function f() {
	global $gv, $gw;
	static $sv;
	static $si = 4;
	$gv = $gv + $sv + $si;
	unset($gv);
	try {
		$a = risky();
		throw $e;
	} catch (Exception $ex) {
		$a = $ex;
	} finally {
		$done = 1;
	}
	return;
}
$r = f();
echo $r, "done";
exit;
`, Options{})
}

func TestEngineEquivalenceInclude(t *testing.T) {
	assertEnginesAgreeMulti(t, map[string]string{
		"lib/util.php": `<?php $util = 1; function helper($x) { return $x + 1; }`,
		"main.php": `<?php
include "lib/util.php";
require_once "lib/util.php";
include $dynamic;
$v = helper(2);
`,
	}, fileRoot("main.php"), Options{})
}

// TestEngineEquivalenceFuncRoot exercises FuncNode roots, including the
// synthesized method wrapper shape the callgraph produces (shared body
// slice, fresh FuncDecl pointer).
func TestEngineEquivalenceFuncRoot(t *testing.T) {
	srcs := map[string]string{"test.php": `<?php
function handler($input, array $opts) {
	$dst = $opts["dir"] . "/" . $input;
	if (strlen($input) > 0) {
		move_uploaded_file($_FILES["f"]["tmp_name"], $dst);
	}
	return $dst;
}
`}
	mkRoot := func(files []*phpast.File) *callgraph.Node {
		for _, s := range files[0].Stmts {
			if d, ok := s.(*phpast.FuncDecl); ok {
				// Fresh wrapper sharing the body slice, like callgraph method
				// roots.
				decl := &phpast.FuncDecl{P: d.P, Name: d.Name, Params: d.Params, Body: d.Body, EndLine: d.EndLine}
				return &callgraph.Node{Kind: callgraph.FuncNode, Name: d.Name, File: "test.php", Func: decl}
			}
		}
		t.Fatal("no function found")
		return nil
	}
	assertEnginesAgreeMulti(t, srcs, mkRoot, Options{})
}

// TestEngineEquivalenceBudgets checks the engines agree even when a
// budget aborts execution mid-way (identical checkpoint placement).
func TestEngineEquivalenceBudgets(t *testing.T) {
	src := `<?php
for ($i = 0; $i < $n; $i++) {
	if ($a) { $x = 1; } else { $x = 2; }
	if ($b) { $y = 1; } else { $y = 2; }
	if ($c) { $z = 1; } else { $z = 2; }
}
`
	assertEnginesAgree(t, src, Options{MaxPaths: 8})
	assertEnginesAgree(t, src, Options{MaxObjects: 40})
}

// TestEngineEquivalenceEmptyEnvSpans pins checkpoint parity when a
// statement list runs with no live path. A concretely-bounded loop at a
// raised unroll limit drains every env out of the body before the final
// unroll iteration; execStmts stops after one budget check (live == 0),
// so runCode must too instead of charging one check per remaining span.
// Found by FuzzEngineEquivalence (BudgetChecks off by one).
func TestEngineEquivalenceEmptyEnvSpans(t *testing.T) {
	opts := Options{MaxPaths: 200, MaxObjects: 20000, MaxCallDepth: 8, LoopUnroll: 4}
	assertEnginesAgree(t, `<?php
for ($j = 0; $j < 2; $j++) { if ($j) { $a = 1; } copy($src, $p); }
`, opts)
	assertEnginesAgree(t, `<?php
$j = 0;
while ($j < 2) { $j++; if ($j > 1) { continue; } copy($src, $p); }
`, opts)
}

func TestParseEngineKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		ok   bool
	}{
		{"", EngineTree, true},
		{"tree", EngineTree, true},
		{"vm", EngineVM, true},
		{"jit", "", false},
	} {
		got, err := ParseEngineKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngineKind(%q) = %v, %v; want %v ok=%t", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestEngineFactoryCounters(t *testing.T) {
	f, errs := phpparser.Parse("a.php", `<?php function g() { return 1; } $x = g();`)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	files := []*phpast.File{f}

	vmf := NewEngineFactory(EngineVM, files)
	if vmf.FunctionsCompiled() != 2 { // g + file top-level
		t.Errorf("FunctionsCompiled = %d, want 2", vmf.FunctionsCompiled())
	}
	if vmf.CacheHits() != 0 {
		t.Errorf("CacheHits before New = %d, want 0", vmf.CacheHits())
	}
	root := &callgraph.Node{Kind: callgraph.FileNode, Name: "a.php", File: "a.php"}
	for i := 0; i < 3; i++ {
		res := vmf.New(Options{}).Run(context.Background(), root)
		if res.Err != nil {
			t.Fatalf("run %d: %v", i, res.Err)
		}
		if res.Stats.IRInstructionsExecuted == 0 || res.Stats.VMDispatchLoops == 0 {
			t.Errorf("run %d: missing vm counters: %+v", i, res.Stats)
		}
	}
	if vmf.CacheHits() != 2 {
		t.Errorf("CacheHits after 3 News = %d, want 2", vmf.CacheHits())
	}

	tf := NewEngineFactory(EngineTree, files)
	if tf.FunctionsCompiled() != 0 || tf.CacheHits() != 0 {
		t.Errorf("tree factory reports compile counters: %d, %d", tf.FunctionsCompiled(), tf.CacheHits())
	}
	res := tf.New(Options{}).Run(context.Background(), root)
	if res.Stats.IRInstructionsExecuted != 0 || res.Stats.VMDispatchLoops != 0 {
		t.Errorf("tree engine reported vm counters: %+v", res.Stats)
	}

	var _ Engine = treeEngine{}
	var _ Engine = (*vmEngine)(nil)
}

func TestEngineEquivalenceCancellation(t *testing.T) {
	srcs := map[string]string{"test.php": `<?php
while ($x) { $y = $y + 1; if ($z) { $w = 2; } }
`}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	parseRun := func(kind EngineKind) Result {
		f, errs := phpparser.Parse("test.php", srcs["test.php"])
		if len(errs) > 0 {
			t.Fatalf("parse: %v", errs)
		}
		return NewEngineFactory(kind, []*phpast.File{f}).New(Options{}).
			Run(ctx, &callgraph.Node{Kind: callgraph.FileNode, Name: "test.php", File: "test.php"})
	}
	tree, vm := parseRun(EngineTree), parseRun(EngineVM)
	if tf, vf := engineFingerprint(tree), engineFingerprint(vm); tf != vf {
		t.Errorf("engines disagree under cancellation:\n--- tree ---\n%s--- vm ---\n%s", tf, vf)
	}
}

var _ = heapgraph.Null // keep import if fingerprint changes
