package interp

import (
	"testing"

	"repro/internal/heapgraph"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/sexpr"
	"repro/internal/smt"
	"repro/internal/summary"
)

// runSummary parses one file, builds its function summaries, and runs
// the file root under the tree engine with the summary strategy on.
func runSummary(t *testing.T, src string) Result {
	t.Helper()
	f, errs := phpparser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	set := summary.Build([]*phpast.File{f}, smt.NewFactory())
	return run(t, src, Options{Summaries: set})
}

// TestMergeCollapsesDeadStoreBranch: a branch whose only effect is a
// dead store leaves both paths observably identical, so they merge back
// to one at the next statement boundary.
func TestMergeCollapsesDeadStoreBranch(t *testing.T) {
	src := `<?php
function handler() {
	if ($c) { $flag = 1; } else { $flag = 0; }
	$pad = 1;
	move_uploaded_file($_FILES['f']['tmp_name'], "up/x.php");
}
handler();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if inline.Paths != 2 {
		t.Fatalf("inline paths = %d, want 2", inline.Paths)
	}
	if sum.Paths != 1 {
		t.Errorf("summary paths = %d, want 1", sum.Paths)
	}
	if sum.Stats.PathsAvoided != 1 {
		t.Errorf("PathsAvoided = %d, want 1", sum.Stats.PathsAvoided)
	}
	// The survivor is the first (then-arm) path, and the sink hit count
	// collapses with it — one hit on the surviving path versus two.
	if len(inline.Sinks) != 2 || len(sum.Sinks) != 1 {
		t.Fatalf("sinks inline=%d summary=%d, want 2/1", len(inline.Sinks), len(sum.Sinks))
	}
	if inline.Sinks[0].Line != sum.Sinks[0].Line || inline.Sinks[0].Sink != sum.Sinks[0].Sink {
		t.Errorf("surviving sink differs: %+v vs %+v", inline.Sinks[0], sum.Sinks[0])
	}
}

// TestMergeSwitchArms: a switch over one single-use variable produces
// equality-literal suffixes with pairwise-distinct comparands (including
// the default arm's conjunction of negations), all mergeable.
func TestMergeSwitchArms(t *testing.T) {
	src := `<?php
function handler() {
	switch ($s) {
	case 1: $flag = 1; break;
	case 2: $flag = 2; break;
	default: $flag = 0;
	}
	$pad = 1;
	move_uploaded_file($_FILES['f']['tmp_name'], "up/x.php");
}
handler();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if inline.Paths != 3 {
		t.Fatalf("inline paths = %d, want 3", inline.Paths)
	}
	if sum.Paths != 1 {
		t.Errorf("summary paths = %d, want 1 (avoided=%d)", sum.Paths, sum.Stats.PathsAvoided)
	}
}

// TestMergeCompoundsAcrossStatements: N sequential dead-store branches
// explode to 2^N paths inline but stay at one path under merging — the
// Cimy shape in miniature.
func TestMergeCompoundsAcrossStatements(t *testing.T) {
	src := `<?php
function handler() {
	if ($a) { $fa = 1; } else { $fa = 0; }
	if ($b) { $fb = 1; } else { $fb = 0; }
	if ($c) { $fc = 1; } else { $fc = 0; }
	if ($d) { $fd = 1; } else { $fd = 0; }
	move_uploaded_file($_FILES['f']['tmp_name'], "up/x.php");
}
handler();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if inline.Paths != 16 {
		t.Fatalf("inline paths = %d, want 16", inline.Paths)
	}
	if sum.Paths != 1 {
		t.Errorf("summary paths = %d, want 1", sum.Paths)
	}
	if sum.Stats.PathsAvoided != 4 {
		// One fork is reclaimed per boundary: 2->1 four times.
		t.Errorf("PathsAvoided = %d, want 4", sum.Stats.PathsAvoided)
	}
}

// TestNoMergeWhenVariableLive: when the branched-on flag is read later,
// the paths differ observably and must all survive.
func TestNoMergeWhenVariableLive(t *testing.T) {
	src := `<?php
function handler() {
	if ($c) { $flag = 1; } else { $flag = 0; }
	move_uploaded_file($_FILES['f']['tmp_name'], "up/" . $flag . ".php");
}
handler();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if inline.Paths != sum.Paths {
		t.Errorf("paths diverged: inline=%d summary=%d", inline.Paths, sum.Paths)
	}
	if sum.Stats.PathsAvoided != 0 {
		t.Errorf("PathsAvoided = %d, want 0", sum.Stats.PathsAvoided)
	}
}

// TestNoMergeWhenConditionReused: a condition variable read twice is
// outside the single-use literal vocabulary — its second branch's
// suffix would not be independently satisfiable, so no merge.
func TestNoMergeWhenConditionReused(t *testing.T) {
	src := `<?php
function handler() {
	if ($c) { $fa = 1; } else { $fa = 0; }
	if ($c) { $fb = 1; } else { $fb = 0; }
	move_uploaded_file($_FILES['f']['tmp_name'], "up/x.php");
}
handler();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if inline.Paths != sum.Paths {
		t.Errorf("paths diverged: inline=%d summary=%d", inline.Paths, sum.Paths)
	}
	if sum.Stats.PathsAvoided != 0 {
		t.Errorf("PathsAvoided = %d, want 0", sum.Stats.PathsAvoided)
	}
}

// TestTrivialReturnFormalInstantiated: an identity-shaped helper is
// answered from its summary — no frame push, the actual's label is the
// return value — and the result is indistinguishable from inlining.
func TestTrivialReturnFormalInstantiated(t *testing.T) {
	src := `<?php
function pick($x, $y) { return $y; }
$v = pick("a", $_FILES['f']['name']);
move_uploaded_file($_FILES['f']['tmp_name'], "up/" . $v);
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if sum.Stats.SummaryInstantiated != 1 {
		t.Errorf("SummaryInstantiated = %d, want 1", sum.Stats.SummaryInstantiated)
	}
	if len(inline.Sinks) != 1 || len(sum.Sinks) != 1 {
		t.Fatalf("sinks inline=%d summary=%d, want 1/1", len(inline.Sinks), len(sum.Sinks))
	}
	is, ss := inline.Sinks[0], sum.Sinks[0]
	a := sexprString(inline, is.Dst)
	b := sexprString(sum, ss.Dst)
	if a != b {
		t.Errorf("dst differs: inline=%s summary=%s", a, b)
	}
}

// TestTrivialReturnConstInstantiated: a constant-returning helper is
// answered with one shared concrete allocation at the literal's line.
func TestTrivialReturnConstInstantiated(t *testing.T) {
	src := `<?php
function updir() { return "uploads/"; }
move_uploaded_file($_FILES['f']['tmp_name'], updir() . "x.php");
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if sum.Stats.SummaryInstantiated != 1 {
		t.Errorf("SummaryInstantiated = %d, want 1", sum.Stats.SummaryInstantiated)
	}
	a := sexprString(inline, inline.Sinks[0].Dst)
	b := sexprString(sum, sum.Sinks[0].Dst)
	if a != b {
		t.Errorf("dst differs: inline=%s summary=%s", a, b)
	}
}

// TestEscapedCalleeFallsBackToInline: a by-ref callee escapes
// summarization; the engine counts it and inlines, with identical
// observable results.
func TestEscapedCalleeFallsBackToInline(t *testing.T) {
	src := `<?php
function fill(&$out) { $out = $_FILES['f']['name']; }
fill($v);
move_uploaded_file($_FILES['f']['tmp_name'], "up/" . $v);
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if sum.Stats.SummaryEscapedCallees != 1 {
		t.Errorf("SummaryEscapedCallees = %d, want 1", sum.Stats.SummaryEscapedCallees)
	}
	if sum.Stats.SummaryInstantiated != 0 {
		t.Errorf("SummaryInstantiated = %d, want 0", sum.Stats.SummaryInstantiated)
	}
	a := sexprString(inline, inline.Sinks[0].Dst)
	b := sexprString(sum, sum.Sinks[0].Dst)
	if a != b {
		t.Errorf("dst differs: inline=%s summary=%s", a, b)
	}
}

// TestMethodCallNeverSummarized: $this-bound frames bypass the strategy
// seam entirely (the gate is thisLabel == Null), so methods behave
// exactly as inline even when a same-named summary exists.
func TestMethodCallNeverSummarized(t *testing.T) {
	src := `<?php
class U {
	function dest() { return "up/x.php"; }
	function go() { move_uploaded_file($_FILES['f']['tmp_name'], $this->dest()); }
}
$u = new U();
$u->go();
`
	inline := run(t, src, Options{})
	sum := runSummary(t, src)
	if sum.Stats.SummaryInstantiated != 0 {
		t.Errorf("SummaryInstantiated = %d, want 0 for method calls", sum.Stats.SummaryInstantiated)
	}
	if len(inline.Sinks) != len(sum.Sinks) {
		t.Errorf("sinks diverged: inline=%d summary=%d", len(inline.Sinks), len(sum.Sinks))
	}
}

// TestSummaryTreeVMEquivalence: the strategy seam lives in shared
// Interp machinery, so tree and VM engines under the same summary set
// must agree on the full engine fingerprint (paths, labels, sinks).
func TestSummaryTreeVMEquivalence(t *testing.T) {
	srcs := map[string]string{
		"a.php": `<?php
function pick($x, $y) { return $y; }
function handler() {
	if ($a) { $fa = 1; } else { $fa = 0; }
	if ($b) { $fb = 1; } else { $fb = 0; }
	switch ($s) {
	case 1: $fs = 1; break;
	default: $fs = 0;
	}
	$v = pick("a", $_FILES['f']['name']);
	move_uploaded_file($_FILES['f']['tmp_name'], "up/" . $v);
}
handler();
`,
	}
	parseOnce := func() []*phpast.File {
		f, errs := phpparser.Parse("a.php", srcs["a.php"])
		if len(errs) > 0 {
			t.Fatalf("parse: %v", errs)
		}
		return []*phpast.File{f}
	}
	set := summary.Build(parseOnce(), smt.NewFactory())
	tree, vm := runEngines(t, srcs, fileRoot("a.php"), Options{Summaries: set})
	a, b := engineFingerprint(tree), engineFingerprint(vm)
	if a != b {
		t.Errorf("tree vs vm under summaries:\ntree: %s\nvm:   %s", a, b)
	}
	if tree.Stats.PathsAvoided == 0 {
		t.Error("PathsAvoided = 0, want > 0 (merge never fired)")
	}
}

// TestSummaryModeDisablesBlockCache: path merging rewrites env sets
// between spans, which would poison the block-fact cache's env-set
// keying; the VM must run cacheless under summaries.
func TestSummaryModeDisablesBlockCache(t *testing.T) {
	srcs := map[string]string{"a.php": `<?php
function handler() {
	if ($a) { $fa = 1; } else { $fa = 0; }
	$pad = 1;
	$pad2 = 2;
}
handler();
`}
	f, errs := phpparser.Parse("a.php", srcs["a.php"])
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	set := summary.Build([]*phpast.File{f}, smt.NewFactory())
	_, vm := runEngines(t, srcs, fileRoot("a.php"), Options{Summaries: set})
	if vm.Stats.BlockCacheHits != 0 || vm.Stats.BlockCacheMisses != 0 {
		t.Errorf("block cache active under summaries: hits=%d misses=%d",
			vm.Stats.BlockCacheHits, vm.Stats.BlockCacheMisses)
	}
}

// sexprString renders one label of a result's graph.
func sexprString(res Result, l heapgraph.Label) string {
	return sexpr.Format(res.Graph.ToSexpr(l))
}
