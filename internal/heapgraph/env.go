package heapgraph

import (
	"sort"

	"repro/internal/sexpr"
)

// frame is one variable scope. The bottom frame is the file-level (global)
// scope; each inlined function call pushes a frame.
//
// Frames are copy-on-write: Clone marks both the original's and the
// clone's frames shared without copying the maps, and every mutator
// materializes a private copy (via Env.own) only when it actually writes
// to a shared frame. Forking a path is therefore O(scope depth) instead
// of O(total bindings) — the persistent shared-tail representation that
// makes deep symbolic forks cheap.
type frame struct {
	vars map[string]Label
	// globalImports records names aliased into this frame via PHP's
	// `global` statement; their final values are written back to the
	// global frame when the scope pops.
	globalImports map[string]bool
	// shared marks the maps as referenced by more than one Env; they must
	// be copied before mutation.
	shared bool
}

func newFrame() frame {
	return frame{vars: map[string]Label{}}
}

func (f frame) clone() frame {
	n := frame{vars: make(map[string]Label, len(f.vars))}
	for k, v := range f.vars {
		n.vars[k] = v
	}
	if f.globalImports != nil {
		n.globalImports = make(map[string]bool, len(f.globalImports))
		for k := range f.globalImports {
			n.globalImports[k] = true
		}
	}
	return n
}

// Env is the environment of one execution path (the paper's
// Env = {Var, Map, cur}): a mapping from variable names to object labels
// plus the path's reachability constraint. On top of the paper's
// definition it carries the scope stack used for context-sensitive
// function-call inlining and the control-flow flags (return/break/
// continue) the interpreter needs.
type Env struct {
	frames []frame

	// Cur is the label of the path's reachability constraint object, or
	// Null when the path is unconditionally reachable.
	Cur Label
	// Returned holds the label of the value produced by an executed
	// `return`; Terminated marks paths that hit return/exit/throw and stop
	// executing subsequent statements in the current scope.
	Returned   Label
	Terminated bool
	// BreakN / ContinueN are pending loop-control levels (PHP's `break n`).
	// A non-zero value suspends statement execution until the enclosing
	// loop consumes it.
	BreakN    int
	ContinueN int
	// Tmp is the interpreter's per-path operand stack: partially evaluated
	// operand labels are parked here while a sibling operand evaluates, so
	// that label vectors stay aligned when the sibling's evaluation forks
	// the path (labels are cloned along with the environment).
	Tmp []Label
}

// NewEnv returns an environment with a single (global) scope, no bindings,
// and an empty reachability constraint.
func NewEnv() *Env {
	return &Env{frames: []frame{newFrame()}}
}

func (e *Env) top() *frame { return &e.frames[len(e.frames)-1] }

// own returns frame i ready for mutation, materializing a private copy of
// its maps first if they are shared with another Env (copy-on-write).
func (e *Env) own(i int) *frame {
	f := &e.frames[i]
	if f.shared {
		*f = f.clone()
	}
	return f
}

// ownTop is own for the current scope.
func (e *Env) ownTop() *frame { return e.own(len(e.frames) - 1) }

// Suspended reports whether the path is currently not executing statements
// (terminated or unwinding a break/continue).
func (e *Env) Suspended() bool {
	return e.Terminated || e.BreakN > 0 || e.ContinueN > 0
}

// Get returns the label bound to the variable in the current scope, or
// Null (the paper's Get_Map).
func (e *Env) Get(name string) Label { return e.top().vars[name] }

// Has reports whether the variable is bound in the current scope.
func (e *Env) Has(name string) bool {
	_, ok := e.top().vars[name]
	return ok
}

// Bind associates a variable with an object label in the current scope
// (the paper's Add_Var + Add_Map).
func (e *Env) Bind(name string, l Label) { e.ownTop().vars[name] = l }

// Unbind removes a variable binding (PHP unset()).
func (e *Env) Unbind(name string) { delete(e.ownTop().vars, name) }

// VarNames returns the bound variable names of the current scope, sorted.
func (e *Env) VarNames() []string {
	out := make([]string, 0, len(e.top().vars))
	for v := range e.top().vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// PushScope enters a fresh variable scope for an inlined function call.
func (e *Env) PushScope() {
	e.frames = append(e.frames, newFrame())
}

// PopScope leaves the current scope, writing back variables imported with
// `global`, and clears the return state so the caller's path continues.
func (e *Env) PopScope() {
	top := e.top()
	if len(e.frames) > 1 && top.globalImports != nil {
		g := e.own(0)
		for name := range top.globalImports {
			if l, ok := top.vars[name]; ok {
				g.vars[name] = l
			}
		}
	}
	e.frames = e.frames[:len(e.frames)-1]
	e.Returned = Null
	e.Terminated = false
}

// Depth returns the scope depth (1 = global scope only).
func (e *Env) Depth() int { return len(e.frames) }

// ImportGlobal implements PHP's `global $name`: the current scope sees the
// global frame's binding (created as fresh if absent via mk), and writes it
// back on PopScope.
func (e *Env) ImportGlobal(name string, mk func() Label) {
	g := &e.frames[0]
	l, ok := g.vars[name]
	if !ok {
		l = mk()
		e.own(0).vars[name] = l
	}
	top := e.ownTop()
	top.vars[name] = l
	if top.globalImports == nil {
		top.globalImports = map[string]bool{}
	}
	top.globalImports[name] = true
}

// Clone forks the environment. Cloning is how the interpreter forks paths
// at conditionals; object labels are shared with the original, which is
// the memory-sharing design the paper credits for the small per-path
// object counts.
//
// Scope frames are shared copy-on-write: both sides keep referencing the
// same variable maps, marked shared, and whichever path writes first pays
// for the copy of just the frame it writes to. The path condition (Cur)
// is a heap-graph label, so the condition prefix is a shared tail by
// construction. Forking is therefore O(scope depth), not O(bindings).
func (e *Env) Clone() *Env {
	n := &Env{
		frames:     make([]frame, len(e.frames)),
		Cur:        e.Cur,
		Returned:   e.Returned,
		Terminated: e.Terminated,
		BreakN:     e.BreakN,
		ContinueN:  e.ContinueN,
	}
	for i := range e.frames {
		e.frames[i].shared = true
		n.frames[i] = e.frames[i]
	}
	if len(e.Tmp) > 0 {
		n.Tmp = append([]Label(nil), e.Tmp...)
	}
	return n
}

// SharedFrames returns the number of scope frames currently borrowed
// copy-on-write (shared with at least one other Env at the time of the
// last fork). The interpreter samples it at fork sites to report how much
// structure forking shared instead of copied.
func (e *Env) SharedFrames() int {
	n := 0
	for i := range e.frames {
		if e.frames[i].shared {
			n++
		}
	}
	return n
}

// PushTmp parks a label on the operand stack.
func (e *Env) PushTmp(l Label) { e.Tmp = append(e.Tmp, l) }

// PopTmp removes and returns the most recently parked label.
func (e *Env) PopTmp() Label {
	if len(e.Tmp) == 0 {
		return Null
	}
	l := e.Tmp[len(e.Tmp)-1]
	e.Tmp = e.Tmp[:len(e.Tmp)-1]
	return l
}

// ER extends the path's reachability constraint with the condition object l
// (the paper's ER, "Extend_Reachability"): cur becomes cur AND l, building
// the AND operation node in the heap graph. A Null l leaves cur unchanged.
func (e *Env) ER(g *Graph, l Label, line int) {
	if l == Null {
		return
	}
	if e.Cur == Null {
		e.Cur = l
		return
	}
	u := g.NewOp("And", sexpr.Bool, line)
	g.AddEdge(u, e.Cur)
	g.AddEdge(u, l)
	e.Cur = u
}

// EquivalentModulo reports whether two environments are observably
// identical except for the top-frame variables named in ignore: same
// scope depth, same control-flow state, same operand stack, the same
// bindings in every frame (top-frame names in ignore excluded on both
// sides), and the same global imports. The path-merging machinery uses
// it with a function's dead-variable set to detect paths that differ
// only in values no later statement can observe. The path condition
// (Cur) is deliberately NOT compared — the caller reasons about it
// separately.
func (e *Env) EquivalentModulo(o *Env, ignore map[string]bool) bool {
	if len(e.frames) != len(o.frames) ||
		e.Returned != o.Returned || e.Terminated != o.Terminated ||
		e.BreakN != o.BreakN || e.ContinueN != o.ContinueN ||
		len(e.Tmp) != len(o.Tmp) {
		return false
	}
	for i := range e.Tmp {
		if e.Tmp[i] != o.Tmp[i] {
			return false
		}
	}
	top := len(e.frames) - 1
	for i := range e.frames {
		ef, of := &e.frames[i], &o.frames[i]
		skip := func(name string) bool { return i == top && ignore[name] }
		n := 0
		for name, l := range ef.vars {
			if skip(name) {
				continue
			}
			n++
			if ol, ok := of.vars[name]; !ok || ol != l {
				return false
			}
		}
		m := 0
		for name := range of.vars {
			if !skip(name) {
				m++
			}
		}
		if n != m {
			return false
		}
		if len(ef.globalImports) != len(of.globalImports) {
			return false
		}
		for name := range ef.globalImports {
			if !of.globalImports[name] {
				return false
			}
		}
	}
	return true
}

// EnvSet is the paper's ℰ: the environments of all live execution paths.
type EnvSet []*Env

// CloneAll deep-copies every environment.
func (s EnvSet) CloneAll() EnvSet {
	out := make(EnvSet, len(s))
	for i, e := range s {
		out[i] = e.Clone()
	}
	return out
}

// Live returns the environments that are executing statements (not
// terminated or unwinding loop control).
func (s EnvSet) Live() EnvSet {
	out := make(EnvSet, 0, len(s))
	for _, e := range s {
		if !e.Suspended() {
			out = append(out, e)
		}
	}
	return out
}
