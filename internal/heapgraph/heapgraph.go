// Package heapgraph implements UChecker's heap graph and per-path
// environments (Section III-B of the paper).
//
// The heap graph G compactly profiles the dependencies among all objects
// produced by all execution paths: nodes are labelled, typed objects for
// concrete values, symbolic values, built-in functions, and operations;
// ordered directed edges connect operations/functions to their operands.
// Each execution path owns an environment mapping variable names to object
// labels plus a `cur` label holding the path's reachability constraint.
// Because environments share object labels, objects created once are
// reused across many paths — this sharing is what keeps Table III's
// "objects per path" averages small.
package heapgraph

import (
	"fmt"
	"strconv"

	"repro/internal/sexpr"
)

// Label identifies an object in the heap graph. 0 is the null label (the
// paper's cur = null).
type Label int

// Null is the absent label.
const Null Label = 0

// ObjKind classifies an object.
type ObjKind int

// Object kinds, mirroring the paper's O_C, O_S, O_FUNC, O_OP partitions,
// plus an explicit array kind for PHP array values (the paper folds arrays
// into concrete/symbolic objects with type array; a distinct kind keeps
// element tables attached to the object).
const (
	KindConcrete ObjKind = iota
	KindSymbol
	KindFunc
	KindOp
	KindArray
)

func (k ObjKind) String() string {
	switch k {
	case KindConcrete:
		return "concrete"
	case KindSymbol:
		return "symbol"
	case KindFunc:
		return "func"
	case KindOp:
		return "op"
	default:
		return "array"
	}
}

// Object is one heap-graph node.
type Object struct {
	Label Label
	Kind  ObjKind
	Type  sexpr.Type

	// Val holds the concrete value for KindConcrete.
	Val sexpr.Expr
	// Name is the symbol name (KindSymbol), built-in function name
	// (KindFunc), or operator spelling (KindOp).
	Name string
	// Line is the source line whose evaluation created the object,
	// preserving the paper's AST-node-to-source mapping.
	Line int
}

// ArrayInfo is the element table of a KindArray object.
type ArrayInfo struct {
	// Keys preserves insertion order of string keys.
	Keys []string
	// Elems maps string keys (integer keys are canonicalized to their
	// decimal spelling, as PHP does) to element labels.
	Elems map[string]Label
	// NextIndex is the next automatic integer key for $a[] pushes.
	NextIndex int64
	// Ver counts mutations (SetElem calls) on this array. Consumers that
	// memoize decisions derived from the element table can compare Ver to
	// detect staleness without diffing the table.
	Ver uint64
}

// Recorder observes graph mutations and array reads. A non-nil recorder
// installed with SetRecorder sees every object/edge/element creation (with
// the arguments as passed, before any internal normalization such as
// symbol auto-naming) and every element-table read. The block-fact cache
// uses this to tape a block's heap effects and its array read set.
type Recorder interface {
	// RecAlloc observes a new object. name is the name argument as passed
	// (empty for auto-named symbols and for kinds without names), val the
	// concrete value (nil unless KindConcrete).
	RecAlloc(kind ObjKind, name string, t sexpr.Type, val sexpr.Expr, line int, result Label)
	// RecEdge observes AddEdge(from, to).
	RecEdge(from, to Label)
	// RecSetElem observes SetElem(arr, key, val), including PushElem.
	RecSetElem(arr, val Label, key string)
	// RecArrayRead observes an element-table read (Array or Elem) together
	// with the table's current version.
	RecArrayRead(arr Label, ver uint64)
}

// Graph is the heap graph.
type Graph struct {
	objs   map[Label]*Object
	edges  map[Label][]Label
	arrays map[Label]*ArrayInfo
	next   Label
	symSeq int
	rec    Recorder
}

// New returns an empty heap graph.
func New() *Graph {
	return &Graph{
		objs:   map[Label]*Object{},
		edges:  map[Label][]Label{},
		arrays: map[Label]*ArrayInfo{},
	}
}

// SetRecorder installs (or, with nil, removes) the mutation recorder.
func (g *Graph) SetRecorder(r Recorder) { g.rec = r }

// LastLabel returns the most recently allocated label (0 for an empty
// graph). The next allocation returns LastLabel()+1.
func (g *Graph) LastLabel() Label { return g.next }

// Find returns the object with the given label, or nil (the paper's
// Find(G, l)).
func (g *Graph) Find(l Label) *Object { return g.objs[l] }

// NumObjects returns the number of objects in the graph (Table III's
// "Objects" column).
func (g *Graph) NumObjects() int { return len(g.objs) }

func (g *Graph) add(o *Object) Label {
	g.next++
	o.Label = g.next
	g.objs[o.Label] = o
	return o.Label
}

// NewConcrete creates and adds an object for a concrete value (the paper's
// Create_Concrete_Obj + Add_Concrete_Obj). The value's own type is used.
func (g *Graph) NewConcrete(v sexpr.Expr, line int) Label {
	l := g.add(&Object{Kind: KindConcrete, Type: v.Kind(), Val: v, Line: line})
	if g.rec != nil {
		g.rec.RecAlloc(KindConcrete, "", v.Kind(), v, line, l)
	}
	return l
}

// NewSymbol creates a symbolic-value object. An empty name generates a
// fresh unique one (the paper's randomly-generated symbol names).
func (g *Graph) NewSymbol(name string, t sexpr.Type, line int) Label {
	orig := name
	if name == "" {
		g.symSeq++
		name = "s_" + strconv.Itoa(g.symSeq)
	}
	l := g.add(&Object{Kind: KindSymbol, Type: t, Name: name, Line: line})
	if g.rec != nil {
		// Record the pre-generation name so a replay re-consumes symSeq
		// exactly as a real re-execution would.
		g.rec.RecAlloc(KindSymbol, orig, t, nil, line, l)
	}
	return l
}

// NewFunc creates an object for a built-in function invocation whose result
// type is t.
func (g *Graph) NewFunc(name string, t sexpr.Type, line int) Label {
	l := g.add(&Object{Kind: KindFunc, Type: t, Name: name, Line: line})
	if g.rec != nil {
		g.rec.RecAlloc(KindFunc, name, t, nil, line, l)
	}
	return l
}

// NewOp creates an operation object (the paper's Create_OP_Obj).
func (g *Graph) NewOp(op string, t sexpr.Type, line int) Label {
	l := g.add(&Object{Kind: KindOp, Type: t, Name: op, Line: line})
	if g.rec != nil {
		g.rec.RecAlloc(KindOp, op, t, nil, line, l)
	}
	return l
}

// NewArray creates an empty array object.
func (g *Graph) NewArray(line int) Label {
	l := g.add(&Object{Kind: KindArray, Type: sexpr.Array, Line: line})
	g.arrays[l] = &ArrayInfo{Elems: map[string]Label{}}
	if g.rec != nil {
		g.rec.RecAlloc(KindArray, "", sexpr.Array, nil, line, l)
	}
	return l
}

// Array returns the element table of an array object, or nil.
func (g *Graph) Array(l Label) *ArrayInfo {
	info := g.arrays[l]
	if g.rec != nil && info != nil {
		g.rec.RecArrayRead(l, info.Ver)
	}
	return info
}

// SetElem sets the element for a string key on an array object.
func (g *Graph) SetElem(arr Label, key string, val Label) {
	info := g.arrays[arr]
	if info == nil {
		return
	}
	if _, exists := info.Elems[key]; !exists {
		info.Keys = append(info.Keys, key)
	}
	info.Elems[key] = val
	info.Ver++
	// Keep NextIndex past any integer key.
	if n, err := strconv.ParseInt(key, 10, 64); err == nil && n >= info.NextIndex {
		info.NextIndex = n + 1
	}
	if g.rec != nil {
		g.rec.RecSetElem(arr, val, key)
	}
}

// PushElem appends a value with the next automatic integer key, returning
// the key used.
func (g *Graph) PushElem(arr Label, val Label) string {
	info := g.arrays[arr]
	if info == nil {
		return ""
	}
	key := strconv.FormatInt(info.NextIndex, 10)
	g.SetElem(arr, key, val)
	return key
}

// Elem looks up a string key on an array object.
func (g *Graph) Elem(arr Label, key string) (Label, bool) {
	info := g.arrays[arr]
	if info == nil {
		return Null, false
	}
	if g.rec != nil {
		g.rec.RecArrayRead(arr, info.Ver)
	}
	l, ok := info.Elems[key]
	return l, ok
}

// AddEdge appends a directed, ordered edge from an operation/function
// object to an operand (the paper's Add_Edge; order distinguishes left and
// right operands).
func (g *Graph) AddEdge(from, to Label) {
	g.edges[from] = append(g.edges[from], to)
	if g.rec != nil {
		g.rec.RecEdge(from, to)
	}
}

// Edges returns the ordered operand labels of an object.
func (g *Graph) Edges(l Label) []Label { return g.edges[l] }

// ToSexpr renders the value rooted at l as a PHP-semantics s-expression by
// traversing the heap graph (the paper's Section III-B1 observation that
// the tree-like structure of the heap graph enables s-expression
// representations). Sharing is preserved logically; cycles (which cannot
// arise from the interpreter) are cut with fresh symbols for safety.
func (g *Graph) ToSexpr(l Label) sexpr.Expr {
	return g.toSexpr(l, map[Label]bool{})
}

func (g *Graph) toSexpr(l Label, visiting map[Label]bool) sexpr.Expr {
	o := g.objs[l]
	if o == nil {
		return sexpr.NullVal{}
	}
	if visiting[l] {
		return sexpr.NewSym(fmt.Sprintf("s_cycle_%d", l), o.Type)
	}
	switch o.Kind {
	case KindConcrete:
		return o.Val
	case KindSymbol:
		return sexpr.NewSym(o.Name, o.Type)
	case KindArray:
		// Arrays appearing as values are rendered as (array k1 v1 k2 v2 ...).
		visiting[l] = true
		defer delete(visiting, l)
		info := g.arrays[l]
		app := &sexpr.App{Op: "array", Type: sexpr.Array}
		for _, k := range info.Keys {
			app.Args = append(app.Args, sexpr.StrVal(k), g.toSexpr(info.Elems[k], visiting))
		}
		return app
	default: // KindFunc, KindOp
		visiting[l] = true
		defer delete(visiting, l)
		app := &sexpr.App{Op: o.Name, Type: o.Type}
		for _, e := range g.edges[l] {
			app.Args = append(app.Args, g.toSexpr(e, visiting))
		}
		return app
	}
}

// Reaches reports whether target is reachable from src following operand
// edges and array elements. It implements the taint query of Constraint-1:
// "e_src is tainted by $_FILES if there exists a path in G from the object
// referred by l to $_FILES".
func (g *Graph) Reaches(src, target Label) bool {
	if src == target {
		return true
	}
	seen := map[Label]bool{}
	var dfs func(Label) bool
	dfs = func(l Label) bool {
		if l == target {
			return true
		}
		if seen[l] {
			return false
		}
		seen[l] = true
		for _, e := range g.edges[l] {
			if dfs(e) {
				return true
			}
		}
		if info := g.arrays[l]; info != nil {
			for _, v := range info.Elems {
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(src)
}

// ReachesName reports whether an object whose Name matches name is
// reachable from src. Used for taint queries against the $_FILES symbol
// family.
func (g *Graph) ReachesName(src Label, name string) bool {
	seen := map[Label]bool{}
	var dfs func(Label) bool
	dfs = func(l Label) bool {
		if seen[l] {
			return false
		}
		seen[l] = true
		o := g.objs[l]
		if o != nil && o.Name == name {
			return true
		}
		for _, e := range g.edges[l] {
			if dfs(e) {
				return true
			}
		}
		if info := g.arrays[l]; info != nil {
			for _, v := range info.Elems {
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(src)
}

// Lines returns the distinct source lines of all objects reachable from l,
// ascending. This powers the source-code-focused reports: each constraint
// can be traced back to the lines that built it.
func (g *Graph) Lines(l Label) []int {
	seen := map[Label]bool{}
	lineSet := map[int]bool{}
	var dfs func(Label)
	dfs = func(x Label) {
		if seen[x] || x == Null {
			return
		}
		seen[x] = true
		o := g.objs[x]
		if o == nil {
			return
		}
		if o.Line > 0 {
			lineSet[o.Line] = true
		}
		for _, e := range g.edges[x] {
			dfs(e)
		}
		if info := g.arrays[x]; info != nil {
			for _, v := range info.Elems {
				dfs(v)
			}
		}
	}
	dfs(l)
	out := make([]int, 0, len(lineSet))
	for ln := range lineSet {
		out = append(out, ln)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
