package heapgraph

import (
	"fmt"
	"testing"

	"repro/internal/sexpr"
)

// These tests pin the copy-on-write frame semantics: Clone shares every
// scope frame between both environments, and any mutation on either side
// materializes a private copy of exactly the frame it writes — never
// leaking into the sibling path.

func TestCloneCOWSharesUntilWrite(t *testing.T) {
	g := New()
	e := NewEnv()
	a := g.NewConcrete(sexpr.IntVal(1), 1)
	b := g.NewConcrete(sexpr.IntVal(2), 2)
	e.Bind("x", a)

	c := e.Clone()
	// Both sides report the frame as shared until someone writes.
	if e.SharedFrames() != 1 || c.SharedFrames() != 1 {
		t.Fatalf("shared frames: orig %d clone %d, want 1/1", e.SharedFrames(), c.SharedFrames())
	}
	// Reads do not unshare.
	_ = c.Get("x")
	_ = c.Has("x")
	_ = c.VarNames()
	if c.SharedFrames() != 1 {
		t.Fatal("read unshared a frame")
	}
	// A write on the clone unshares only the clone's frame.
	c.Bind("x", b)
	if c.SharedFrames() != 0 {
		t.Fatalf("clone still shared after write: %d", c.SharedFrames())
	}
	if e.Get("x") != a {
		t.Fatal("clone write leaked into original")
	}
	// A write on the original (whose frame is still marked shared from the
	// fork) must not touch the clone either.
	c2 := g.NewConcrete(sexpr.IntVal(3), 3)
	e.Bind("y", c2)
	if c.Has("y") {
		t.Fatal("original write leaked into clone")
	}
	if c.Get("x") != b {
		t.Fatal("clone binding lost after original write")
	}
}

func TestCloneCOWUnbindIsolation(t *testing.T) {
	g := New()
	e := NewEnv()
	e.Bind("x", g.NewConcrete(sexpr.IntVal(1), 1))
	c := e.Clone()
	c.Unbind("x")
	if !e.Has("x") {
		t.Fatal("Unbind on clone removed the original's binding")
	}
	if c.Has("x") {
		t.Fatal("Unbind on clone had no effect")
	}
}

func TestCloneCOWChainedForks(t *testing.T) {
	g := New()
	base := NewEnv()
	v0 := g.NewConcrete(sexpr.StrVal("base"), 1)
	base.Bind("v", v0)

	// Fork a chain base → c1 → c2; all three then diverge.
	c1 := base.Clone()
	c2 := c1.Clone()
	l1 := g.NewConcrete(sexpr.StrVal("one"), 2)
	l2 := g.NewConcrete(sexpr.StrVal("two"), 3)
	c1.Bind("v", l1)
	c2.Bind("v", l2)
	if base.Get("v") != v0 || c1.Get("v") != l1 || c2.Get("v") != l2 {
		t.Fatalf("chained forks not isolated: base=%v c1=%v c2=%v",
			base.Get("v"), c1.Get("v"), c2.Get("v"))
	}
}

func TestCloneCOWScopeStackIndependence(t *testing.T) {
	g := New()
	e := NewEnv()
	e.Bind("g", g.NewConcrete(sexpr.IntVal(0), 1))
	e.PushScope()
	e.Bind("local", g.NewConcrete(sexpr.IntVal(1), 2))

	c := e.Clone()
	// Pushing/popping scopes on one side must not disturb the other.
	c.PushScope()
	c.Bind("inner", g.NewConcrete(sexpr.IntVal(2), 3))
	if e.Depth() != 2 {
		t.Fatalf("original depth changed: %d", e.Depth())
	}
	c.PopScope()
	c.PopScope()
	if c.Depth() != 1 || e.Depth() != 2 {
		t.Fatalf("depths: clone %d (want 1) orig %d (want 2)", c.Depth(), e.Depth())
	}
	if !e.Has("local") {
		t.Fatal("original lost its local after clone popped scopes")
	}
}

func TestCloneCOWGlobalWriteback(t *testing.T) {
	g := New()
	e := NewEnv()
	orig := g.NewConcrete(sexpr.StrVal("/uploads"), 1)
	e.Bind("dir", orig)
	e.PushScope()
	e.ImportGlobal("dir", func() Label { return Null })

	// Fork inside the function scope; each side writes a different value
	// back to its own global frame on pop.
	c := e.Clone()
	eVal := g.NewConcrete(sexpr.StrVal("/tmp/e"), 2)
	cVal := g.NewConcrete(sexpr.StrVal("/tmp/c"), 3)
	e.Bind("dir", eVal)
	c.Bind("dir", cVal)
	e.PopScope()
	c.PopScope()
	if e.Get("dir") != eVal {
		t.Fatalf("original write-back = %v, want %v", e.Get("dir"), eVal)
	}
	if c.Get("dir") != cVal {
		t.Fatalf("clone write-back = %v, want %v", c.Get("dir"), cVal)
	}
}

func TestCloneCOWDeepScopes(t *testing.T) {
	// A deep scope stack forked many times: every path stays isolated and
	// SharedFrames reflects the untouched tail.
	g := New()
	e := NewEnv()
	const depth = 16
	for i := 0; i < depth; i++ {
		e.Bind(fmt.Sprintf("v%d", i), g.NewConcrete(sexpr.IntVal(int64(i)), i+1))
		e.PushScope()
	}
	clones := make([]*Env, 8)
	for i := range clones {
		clones[i] = e.Clone()
	}
	for i, c := range clones {
		if c.SharedFrames() != depth+1 {
			t.Fatalf("clone %d: shared %d frames, want %d", i, c.SharedFrames(), depth+1)
		}
		c.Bind("mine", g.NewConcrete(sexpr.IntVal(int64(100+i)), 100))
		// Exactly the written (top) frame unshared.
		if c.SharedFrames() != depth {
			t.Fatalf("clone %d: shared %d frames after write, want %d", i, c.SharedFrames(), depth)
		}
	}
	for i, c := range clones {
		for j, other := range clones {
			if i != j && other.Get("mine") == c.Get("mine") {
				t.Fatalf("clones %d and %d share a binding", i, j)
			}
		}
	}
	if e.Has("mine") {
		t.Fatal("clone write leaked into the forked-from env")
	}
}

func TestCloneCOWTmpStackIsolation(t *testing.T) {
	g := New()
	e := NewEnv()
	l := g.NewConcrete(sexpr.IntVal(1), 1)
	e.PushTmp(l)
	c := e.Clone()
	c.PushTmp(g.NewConcrete(sexpr.IntVal(2), 2))
	if len(e.Tmp) != 1 {
		t.Fatalf("original Tmp grew to %d", len(e.Tmp))
	}
	if got := c.PopTmp(); got == l {
		t.Fatal("clone popped the original's operand")
	}
	if e.PopTmp() != l {
		t.Fatal("original operand lost")
	}
}
