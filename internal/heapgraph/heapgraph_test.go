package heapgraph

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sexpr"
)

func TestObjectCreation(t *testing.T) {
	g := New()
	c := g.NewConcrete(sexpr.IntVal(55), 2)
	s := g.NewSymbol("s_b", sexpr.Int, 3)
	f := g.NewFunc("wp_upload_dir", sexpr.Unknown, 4)
	o := g.NewOp("+", sexpr.Int, 5)

	if g.NumObjects() != 4 {
		t.Errorf("objects = %d", g.NumObjects())
	}
	labels := []Label{c, s, f, o}
	seen := map[Label]bool{}
	for _, l := range labels {
		if l == Null {
			t.Error("Null label assigned")
		}
		if seen[l] {
			t.Errorf("duplicate label %d", l)
		}
		seen[l] = true
	}
	if got := g.Find(c); got.Kind != KindConcrete || got.Type != sexpr.Int {
		t.Errorf("concrete = %+v", got)
	}
	if got := g.Find(s); got.Name != "s_b" || got.Line != 3 {
		t.Errorf("symbol = %+v", got)
	}
	if g.Find(Label(999)) != nil {
		t.Error("Find of unknown label should be nil")
	}
}

func TestFreshSymbolNamesUnique(t *testing.T) {
	g := New()
	a := g.NewSymbol("", sexpr.Unknown, 1)
	b := g.NewSymbol("", sexpr.Unknown, 1)
	if g.Find(a).Name == g.Find(b).Name {
		t.Error("fresh symbols must have distinct names")
	}
}

// Figure 4 of the paper: the heap graph for Listing 2. We build it manually
// and verify the s-expression of path 1's reachability constraint is
// (> (+ s 55) 10).
func TestFigure4Manually(t *testing.T) {
	g := New()
	c55 := g.NewConcrete(sexpr.IntVal(55), 2) // label 1 in the paper
	s := g.NewSymbol("s", sexpr.Int, 3)       // label 2
	plus := g.NewOp("+", sexpr.Int, 3)        // label 3
	g.AddEdge(plus, s)
	g.AddEdge(plus, c55)
	c10 := g.NewConcrete(sexpr.IntVal(10), 4) // label 4
	gt := g.NewOp(">", sexpr.Bool, 4)         // label 5
	g.AddEdge(gt, plus)
	g.AddEdge(gt, c10)
	c22 := g.NewConcrete(sexpr.IntVal(22), 5) // label 6
	minus := g.NewOp("-", sexpr.Int, 5)       // label 7
	g.AddEdge(minus, c22)
	g.AddEdge(minus, s)
	not := g.NewOp("NOT", sexpr.Bool, 6) // label 8
	g.AddEdge(not, gt)
	c88 := g.NewConcrete(sexpr.IntVal(88), 7) // label 9

	if g.NumObjects() != 9 {
		t.Errorf("objects = %d, want 9 (paper labels 1..9)", g.NumObjects())
	}

	// Environments per the paper: Env1 {a->7, b->2, cur=5}, Env2 {a->9,
	// b->2, cur=8}.
	env1, env2 := NewEnv(), NewEnv()
	env1.Bind("a", minus)
	env1.Bind("b", s)
	env1.Cur = gt
	env2.Bind("a", c88)
	env2.Bind("b", s)
	env2.Cur = not

	if got := sexpr.Format(g.ToSexpr(env1.Cur)); got != "(> (+ s 55) 10)" {
		t.Errorf("path1 reachability = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(env2.Cur)); got != "(NOT (> (+ s 55) 10))" {
		t.Errorf("path2 reachability = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(env1.Get("a"))); got != "(- 22 s)" {
		t.Errorf("path1 a = %s", got)
	}
	if got := sexpr.Format(g.ToSexpr(env2.Get("a"))); got != "88" {
		t.Errorf("path2 a = %s", got)
	}
	// Object sharing across environments: both paths reference the same
	// symbol object for $b.
	if env1.Get("b") != env2.Get("b") {
		t.Error("object for $b should be shared across environments")
	}
}

func TestArrayObjects(t *testing.T) {
	g := New()
	arr := g.NewArray(1)
	v1 := g.NewConcrete(sexpr.StrVal("x"), 1)
	v2 := g.NewConcrete(sexpr.StrVal("y"), 2)
	g.SetElem(arr, "name", v1)
	g.SetElem(arr, "tmp", v2)

	if l, ok := g.Elem(arr, "name"); !ok || l != v1 {
		t.Errorf("Elem(name) = %d %v", l, ok)
	}
	if _, ok := g.Elem(arr, "missing"); ok {
		t.Error("missing key should not resolve")
	}
	// Overwrite does not duplicate the key.
	g.SetElem(arr, "name", v2)
	if got := len(g.Array(arr).Keys); got != 2 {
		t.Errorf("keys = %d", got)
	}
}

func TestArrayPush(t *testing.T) {
	g := New()
	arr := g.NewArray(1)
	a := g.NewConcrete(sexpr.IntVal(1), 1)
	b := g.NewConcrete(sexpr.IntVal(2), 1)
	if k := g.PushElem(arr, a); k != "0" {
		t.Errorf("first push key = %q", k)
	}
	if k := g.PushElem(arr, b); k != "1" {
		t.Errorf("second push key = %q", k)
	}
	// Mixed explicit integer key advances the counter.
	g.SetElem(arr, "10", a)
	if k := g.PushElem(arr, b); k != "11" {
		t.Errorf("push after explicit 10 = %q", k)
	}
}

func TestReaches(t *testing.T) {
	g := New()
	files := g.NewSymbol("$_FILES", sexpr.Array, 1)
	idx := g.NewConcrete(sexpr.StrVal("upload_file"), 1)
	access := g.NewOp("array_access", sexpr.Unknown, 1)
	g.AddEdge(access, files)
	g.AddEdge(access, idx)
	concat := g.NewOp(".", sexpr.String, 2)
	other := g.NewSymbol("s_dir", sexpr.String, 2)
	g.AddEdge(concat, other)
	g.AddEdge(concat, access)

	if !g.Reaches(concat, files) {
		t.Error("concat should reach $_FILES")
	}
	if g.Reaches(other, files) {
		t.Error("s_dir should not reach $_FILES")
	}
	if !g.ReachesName(concat, "$_FILES") {
		t.Error("ReachesName should find $_FILES")
	}
	if g.ReachesName(other, "$_FILES") {
		t.Error("ReachesName false positive")
	}
}

func TestReachesThroughArray(t *testing.T) {
	g := New()
	files := g.NewSymbol("$_FILES", sexpr.Array, 1)
	arr := g.NewArray(1)
	g.SetElem(arr, "inner", files)
	if !g.Reaches(arr, files) {
		t.Error("array element reachability")
	}
}

func TestLines(t *testing.T) {
	g := New()
	a := g.NewConcrete(sexpr.StrVal("/"), 7)
	b := g.NewSymbol("s", sexpr.String, 3)
	op := g.NewOp(".", sexpr.String, 5)
	g.AddEdge(op, b)
	g.AddEdge(op, a)
	if got := g.Lines(op); !reflect.DeepEqual(got, []int{3, 5, 7}) {
		t.Errorf("lines = %v", got)
	}
}

func TestEnvBasics(t *testing.T) {
	g := New()
	e := NewEnv()
	if e.Get("x") != Null {
		t.Error("unbound should be Null")
	}
	l := g.NewConcrete(sexpr.IntVal(1), 1)
	e.Bind("x", l)
	if e.Get("x") != l || !e.Has("x") {
		t.Error("bind/get broken")
	}
	e.Unbind("x")
	if e.Has("x") {
		t.Error("unbind broken")
	}
}

func TestEnvCloneIndependence(t *testing.T) {
	g := New()
	e := NewEnv()
	l1 := g.NewConcrete(sexpr.IntVal(1), 1)
	l2 := g.NewConcrete(sexpr.IntVal(2), 1)
	e.Bind("x", l1)
	c := e.Clone()
	c.Bind("x", l2)
	c.Bind("y", l2)
	if e.Get("x") != l1 {
		t.Error("clone write leaked into original")
	}
	if e.Has("y") {
		t.Error("clone binding leaked")
	}
}

func TestER(t *testing.T) {
	g := New()
	e := NewEnv()
	cond1 := g.NewOp(">", sexpr.Bool, 3)
	cond2 := g.NewOp("==", sexpr.Bool, 5)

	// First ER sets cur directly.
	e.ER(g, cond1, 3)
	if e.Cur != cond1 {
		t.Errorf("cur = %d, want %d", e.Cur, cond1)
	}
	// Null leaves cur unchanged.
	e.ER(g, Null, 4)
	if e.Cur != cond1 {
		t.Error("ER(Null) must not change cur")
	}
	// Second ER builds an And node over the previous cur and the new label.
	e.ER(g, cond2, 5)
	andObj := g.Find(e.Cur)
	if andObj == nil || andObj.Name != "And" || andObj.Kind != KindOp {
		t.Fatalf("cur object = %+v", andObj)
	}
	edges := g.Edges(e.Cur)
	if len(edges) != 2 || edges[0] != cond1 || edges[1] != cond2 {
		t.Errorf("And edges = %v", edges)
	}
}

func TestEnvSetLive(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	b.Terminated = true
	s := EnvSet{a, b}
	if live := s.Live(); len(live) != 1 || live[0] != a {
		t.Errorf("live = %v", live)
	}
}

func TestToSexprNull(t *testing.T) {
	g := New()
	if _, ok := g.ToSexpr(Null).(sexpr.NullVal); !ok {
		t.Error("ToSexpr(Null) should be null")
	}
}

func TestToSexprArray(t *testing.T) {
	g := New()
	arr := g.NewArray(1)
	g.SetElem(arr, "k", g.NewConcrete(sexpr.StrVal("v"), 1))
	got := sexpr.Format(g.ToSexpr(arr))
	if got != `(array "k" "v")` {
		t.Errorf("array sexpr = %s", got)
	}
}

func TestToSexprCycleGuard(t *testing.T) {
	g := New()
	op := g.NewOp(".", sexpr.String, 1)
	g.AddEdge(op, op) // artificial cycle; interpreter never builds this
	e := g.ToSexpr(op)
	if e == nil {
		t.Fatal("nil sexpr")
	}
	// Must terminate and embed a cycle symbol.
	app, ok := e.(*sexpr.App)
	if !ok || len(app.Args) != 1 {
		t.Fatalf("got %s", sexpr.Format(e))
	}
	if _, ok := app.Args[0].(*sexpr.Sym); !ok {
		t.Errorf("cycle arg = %s", sexpr.Format(app.Args[0]))
	}
}

// Property: labels are unique and dense (1..N), for any creation sequence.
func TestLabelsUniqueProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		g := New()
		var labels []Label
		for _, op := range ops {
			switch op % 4 {
			case 0:
				labels = append(labels, g.NewConcrete(sexpr.IntVal(int64(op)), 1))
			case 1:
				labels = append(labels, g.NewSymbol("", sexpr.Unknown, 1))
			case 2:
				labels = append(labels, g.NewOp("+", sexpr.Int, 1))
			case 3:
				labels = append(labels, g.NewArray(1))
			}
		}
		seen := map[Label]bool{}
		for _, l := range labels {
			if l == Null || seen[l] {
				return false
			}
			seen[l] = true
		}
		return g.NumObjects() == len(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
