package heapgraph

import (
	"fmt"
	"testing"

	"repro/internal/sexpr"
)

// deepCloneEnv reproduces the pre-COW Clone: every frame's maps are
// copied eagerly. Kept here as the benchmark baseline the persistent
// shared-tail representation is measured against.
func deepCloneEnv(e *Env) *Env {
	n := &Env{
		frames:     make([]frame, len(e.frames)),
		Cur:        e.Cur,
		Returned:   e.Returned,
		Terminated: e.Terminated,
		BreakN:     e.BreakN,
		ContinueN:  e.ContinueN,
	}
	for i := range e.frames {
		n.frames[i] = e.frames[i].clone()
	}
	if len(e.Tmp) > 0 {
		n.Tmp = append([]Label(nil), e.Tmp...)
	}
	return n
}

// benchEnv builds an environment with the given scope depth and bindings
// per frame — the shape of a deeply inlined call chain at a fork site.
func benchEnv(g *Graph, depth, bindings int) *Env {
	e := NewEnv()
	for d := 0; d < depth; d++ {
		for i := 0; i < bindings; i++ {
			e.Bind(fmt.Sprintf("v%d_%d", d, i), g.NewConcrete(sexpr.IntVal(int64(i)), d+1))
		}
		if d < depth-1 {
			e.PushScope()
		}
	}
	return e
}

// BenchmarkPathForkDeep measures one symbolic fork (clone + one write on
// the forked path, the interpreter's pattern at every conditional) on a
// deep, well-populated environment. "deepcopy" is the old eager clone;
// "cow" the persistent shared-tail clone.
func BenchmarkPathForkDeep(b *testing.B) {
	for _, shape := range []struct{ depth, bindings int }{
		{4, 16},
		{16, 32},
		{32, 64},
	} {
		name := fmt.Sprintf("d%d_b%d", shape.depth, shape.bindings)
		g := New()
		l := g.NewConcrete(sexpr.IntVal(42), 1)

		b.Run("deepcopy/"+name, func(b *testing.B) {
			b.ReportAllocs()
			e := benchEnv(g, shape.depth, shape.bindings)
			for i := 0; i < b.N; i++ {
				c := deepCloneEnv(e)
				c.Bind("forked", l)
			}
		})
		b.Run("cow/"+name, func(b *testing.B) {
			b.ReportAllocs()
			e := benchEnv(g, shape.depth, shape.bindings)
			for i := 0; i < b.N; i++ {
				c := e.Clone()
				c.Bind("forked", l)
			}
		})
	}
}
