package heapgraph

import (
	"testing"

	"repro/internal/sexpr"
)

func TestPushPopScope(t *testing.T) {
	g := New()
	e := NewEnv()
	outer := g.NewConcrete(sexpr.IntVal(1), 1)
	inner := g.NewConcrete(sexpr.IntVal(2), 2)

	e.Bind("x", outer)
	e.PushScope()
	if e.Depth() != 2 {
		t.Fatalf("depth = %d", e.Depth())
	}
	if e.Has("x") {
		t.Error("inner scope must not see outer locals")
	}
	e.Bind("x", inner)
	if e.Get("x") != inner {
		t.Error("inner binding lost")
	}
	e.Returned = inner
	e.Terminated = true
	e.PopScope()
	if e.Depth() != 1 {
		t.Fatalf("depth after pop = %d", e.Depth())
	}
	if e.Get("x") != outer {
		t.Error("outer binding not restored")
	}
	if e.Terminated || e.Returned != Null {
		t.Error("PopScope must clear return state")
	}
}

func TestImportGlobalReadsAndWritesBack(t *testing.T) {
	g := New()
	e := NewEnv()
	orig := g.NewConcrete(sexpr.StrVal("/uploads"), 1)
	e.Bind("dir", orig) // global scope binding

	e.PushScope()
	e.ImportGlobal("dir", func() Label { t.Fatal("must reuse existing global"); return Null })
	if e.Get("dir") != orig {
		t.Error("global import should alias the global binding")
	}
	updated := g.NewConcrete(sexpr.StrVal("/tmp"), 2)
	e.Bind("dir", updated)
	e.PopScope()
	if e.Get("dir") != updated {
		t.Error("global write-back lost")
	}
}

func TestImportGlobalCreatesFresh(t *testing.T) {
	g := New()
	e := NewEnv()
	e.PushScope()
	fresh := g.NewSymbol("s_global_wpdb", sexpr.Unknown, 3)
	e.ImportGlobal("wpdb", func() Label { return fresh })
	if e.Get("wpdb") != fresh {
		t.Error("fresh global not bound locally")
	}
	e.PopScope()
	if e.Get("wpdb") != fresh {
		t.Error("fresh global not visible at global scope")
	}
}

func TestCloneDeepCopiesScopes(t *testing.T) {
	g := New()
	e := NewEnv()
	l1 := g.NewConcrete(sexpr.IntVal(1), 1)
	l2 := g.NewConcrete(sexpr.IntVal(2), 1)
	e.Bind("g", l1)
	e.PushScope()
	e.Bind("local", l1)

	c := e.Clone()
	c.Bind("local", l2)
	c.PopScope()
	if e.Get("local") != l1 {
		t.Error("clone scope write leaked")
	}
	if e.Depth() != 2 {
		t.Error("clone pop affected original depth")
	}
}

func TestTmpStack(t *testing.T) {
	e := NewEnv()
	e.PushTmp(Label(5))
	e.PushTmp(Label(7))
	c := e.Clone()
	if got := e.PopTmp(); got != 7 {
		t.Errorf("pop = %d", got)
	}
	if got := e.PopTmp(); got != 5 {
		t.Errorf("pop = %d", got)
	}
	if got := e.PopTmp(); got != Null {
		t.Errorf("pop empty = %d, want Null", got)
	}
	// Clone carries its own copy.
	if got := c.PopTmp(); got != 7 {
		t.Errorf("clone pop = %d", got)
	}
}

func TestSuspendedStates(t *testing.T) {
	e := NewEnv()
	if e.Suspended() {
		t.Error("fresh env should not be suspended")
	}
	e.BreakN = 1
	if !e.Suspended() {
		t.Error("break should suspend")
	}
	e.BreakN = 0
	e.ContinueN = 2
	if !e.Suspended() {
		t.Error("continue should suspend")
	}
	e.ContinueN = 0
	e.Terminated = true
	if !e.Suspended() {
		t.Error("termination should suspend")
	}
}

func TestVarNamesSorted(t *testing.T) {
	g := New()
	e := NewEnv()
	l := g.NewConcrete(sexpr.IntVal(0), 1)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		e.Bind(n, l)
	}
	names := e.VarNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}
