# Repository check targets. `make check` is the CI gate: formatting,
# vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench bench-scan

check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-evaluation benchmarks (bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The Scanner v2 serial-vs-parallel pair.
bench-scan:
	$(GO) test -run '^$$' -bench 'BenchmarkScan(Serial|Parallel|Roots)' .
