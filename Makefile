# Repository check targets. `make check` is the CI gate: formatting,
# vet, build, the full test suite under the race detector, and a bounded
# fuzz smoke over the PHP lexer and parser.

GO ?= go
# Per-target budget for the fuzz smoke; raise for a real fuzzing session
# (e.g. make fuzz-smoke FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: check fmt vet build test race fuzz-smoke crash-matrix registry-sim daemon-chaos engine-diff summary-diff bench bench-scan bench-smt bench-interp bench-interp-diff bench-smoke

check: fmt vet build race fuzz-smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; \
		gofmt -d $$out; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-safety acceptance suite under the race detector: kill the batch
# at every journal-write boundary and require the resumed sweep to merge
# byte-identically (uchecker), plus the journal corruption matrix and
# cache torture tests (scanjournal) and the cancellation/loader
# robustness satellites.
crash-matrix:
	$(GO) test -race -run 'TestCrashResumeMatrix|TestBatchJournalCorruptionRecovery|TestBatchResumeAfterOptionsChange|TestBatchSemanticCorruptionCompaction|TestBatchDuplicateTargetNames|TestBatchCacheCorrectness|TestBatchCacheReadFault|TestScanBatchCancelledTargets' ./internal/uchecker
	$(GO) test -race ./internal/scanjournal
	$(GO) test -race -run 'TestLoadTargetUnreadable|TestWriteToAtomic' ./cmd/uchecker

# Bounded coverage-guided fuzzing of the robustness frontier: the lexer
# and parser must never panic on malformed PHP (the scanner's parse-stage
# fault containment assumes it), and the tree walker and bytecode VM must
# agree on arbitrary programs (the engine-equivalence invariant). Seed
# corpora live under each package's testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLex$$' -fuzztime $(FUZZTIME) ./internal/phplex
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/phpparser
	$(GO) test -run '^$$' -fuzz '^FuzzParseExpr$$' -fuzztime $(FUZZTIME) ./internal/phpparser
	$(GO) test -run '^$$' -fuzz '^FuzzEngineEquivalence$$' -fuzztime $(FUZZTIME) ./internal/interp
	$(GO) test -run '^$$' -fuzz '^FuzzSummaryEquivalence$$' -fuzztime $(FUZZTIME) ./internal/interp
	$(GO) test -run '^$$' -fuzz '^FuzzJournalFold$$' -fuzztime $(FUZZTIME) ./internal/scanjournal
	$(GO) test -run '^$$' -fuzz '^FuzzCoordFold$$' -fuzztime $(FUZZTIME) ./internal/shardcoord

# Registry-scale distributed-scanning acceptance suite under the race
# detector: a 4-worker fleet over a 40-target corpus with a victim
# worker killed (crash semantics) at every lease/journal/publish/fold
# boundary, a paused-then-resumed zombie writer fenced off by token
# checks, graceful SIGTERM-style drain, a real kill -9 of a worker
# subprocess, and the shardcoord lease-protocol suite. The resumed
# fleet's merged report must be byte-identical to an uninterrupted
# single-process sweep; a clean run's merged report is archived at
# REGISTRY_SIM_merged.json.
registry-sim:
	REGISTRY_SIM_OUT=$(CURDIR)/REGISTRY_SIM_merged.json $(GO) test -race -run 'TestRegistrySimCrashMatrix|TestWorkerFleetMergesIdentical|TestWorkerZombieFencedEndToEnd|TestWorkerDrainReleasesLease|TestBatchDrainSemantics|TestBatchCancelSemantics|TestBatchTransientAppendRetry|TestSubprocessKillNine' ./internal/uchecker
	$(GO) test -race ./internal/shardcoord
	@echo "wrote REGISTRY_SIM_merged.json"

# Scan-as-a-service crash-tolerance acceptance suite under the race
# detector: the daemon is killed at EVERY job-lifecycle journal append
# (submit/start/finish of every job plus the manifest, at 1 and 4 scan
# workers) and at each daemon-specific fault seam
# (dequeue/checkpoint/drain), plus a real kill -9 of a daemon
# subprocess mid-scan; every restarted daemon must resume the accepted
# jobs to results byte-identical to an uninterrupted baseline, with no
# job lost, none double-submitted, and at most one terminal journal
# record per job. The clean baseline's canonical reports and the matrix
# shape are archived at DAEMON_CHAOS_matrix.json.
daemon-chaos:
	DAEMON_CHAOS_OUT=$(CURDIR)/DAEMON_CHAOS_matrix.json $(GO) test -race -run 'TestDaemonChaosMatrix|TestDaemonSeamCrashes|TestDaemonChaosKillNine$$' ./internal/scand
	@echo "wrote DAEMON_CHAOS_matrix.json"

# Engine-differential acceptance suite under the race detector: tree vs
# VM byte-identical findings on every corpus app at Workers=1/4, the
# Table III verdict sweep (including the Cimy miss) under the VM, the
# deterministic counter table, and the unit-level equivalence matrix.
engine-diff:
	$(GO) test -race -run 'TestEngineDifferentialCorpus|TestEngineVM' ./internal/uchecker
	$(GO) test -race -run 'TestEngineEquivalence|TestEngineFactoryCounters' ./internal/interp
	$(GO) test -race -run 'TestTableIIIVerdictsVMEngine|TestCounterTableVMDeterministic' ./internal/evalharness

# Interprocedural-strategy differential acceptance suite under the race
# detector: summary vs inline on every corpus app at Workers=1/4
# (findings and Table III verdicts byte-identical modulo summary-only
# work counters), the Cimy path-explosion case completing cleanly under
# default budgets with zero retries, tree-vs-VM equivalence under the
# summary strategy, the summary artifact cache's cold/warm/corrupt/
# version-skew cycle, the daemon's cross-job summary reuse, and the
# unit-level merge/summary suites.
summary-diff:
	$(GO) test -race -run 'TestSummaryDifferentialCorpus|TestCimySummaryCompletes|TestSummaryEngineDifferential|TestInterprocFingerprintToken|TestInlineReportHasNoSummaryCounters|TestSummaryArtifactCache' ./internal/uchecker
	$(GO) test -race -run 'TestMerge|TestNoMerge|TestTrivial|TestEscapedCallee|TestMethodCallNeverSummarized|TestSummary' ./internal/interp
	$(GO) test -race ./internal/summary
	$(GO) test -race -run 'TestHTTPMetricsExposeSummaryCounters' ./internal/scand

# Paper-evaluation benchmarks (bench_test.go).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The Scanner v2 serial-vs-parallel pair.
bench-scan:
	$(GO) test -run '^$$' -bench 'BenchmarkScan(Serial|Parallel|Roots)' .

# Shared-structure constraint-engine micro-benchmarks (interned vs the
# -no-intern ablation), archived as JSON for cross-commit comparison.
bench-smt:
	@{ $(GO) test -run '^$$' -bench 'BenchmarkSimplifyShared|BenchmarkSolverIncremental|BenchmarkInternConstruction' -benchtime 2s -benchmem ./internal/smt; \
	   $(GO) test -run '^$$' -bench 'BenchmarkPathForkDeep' -benchtime 2s -benchmem ./internal/heapgraph; } | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_smt.json
	@echo "wrote BENCH_smt.json"

# Execution-engine benchmarks: bytecode compilation, the tree-vs-VM
# symbolic-execution pair, compile-once amortization across a 32-root
# app, and the full-corpus sweep — archived as JSON for cross-commit
# comparison.
bench-interp:
	@$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 2s -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_interp.json
	@echo "wrote BENCH_interp.json"

# Engine-benchmark regression gate: re-runs bench-interp's suite and
# fails when ns/op or allocs/op regresses more than 15% against the
# committed BENCH_interp.json. The fresh run lands in
# BENCH_interp.new.json — CI archives it as the candidate baseline, and
# after an intentional perf change it replaces the committed file.
bench-interp-diff:
	@$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 2s -benchmem . | tee /dev/stderr | \
	  $(GO) run ./cmd/benchjson -baseline BENCH_interp.json -max-regress 15 -match '^BenchmarkEngine' -out BENCH_interp.new.json
	@echo "wrote BENCH_interp.new.json (candidate baseline)"

# One-iteration smoke over the constraint-engine and execution-engine
# benchmarks: keeps the benchmark harnesses compiling and running inside
# `make check` without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSimplifyShared|BenchmarkSolverIncremental|BenchmarkInternConstruction' -benchtime 1x ./internal/smt
	$(GO) test -run '^$$' -bench 'BenchmarkPathForkDeep' -benchtime 1x ./internal/heapgraph
	$(GO) test -run '^$$' -bench 'BenchmarkEngine(Compile|SymbolicExecution|ScanRoots)' -benchtime 1x .
