// Package repro_test benches every evaluation artifact of the UChecker
// paper plus the design-choice ablations DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Benchmarks:
//
//	BenchmarkTableIII/<app>        one full pipeline run per Table III row
//	BenchmarkComparison            Section IV-C, all three tools, 44 apps
//	BenchmarkPhase*                per-phase costs on corpus applications
//	BenchmarkSolver*               the SMT layer on the paper's constraints
//	BenchmarkAblation*             locality on/off, loop-unroll depth,
//	                               solver candidate budget
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/evalharness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/locality"
	"repro/internal/phpast"
	"repro/internal/phpparser"
	"repro/internal/smt"
	"repro/internal/uchecker"
)

// benchOpts caps the Cimy blow-up so its abort (the measured artifact)
// stays affordable inside a benchmark loop; every verdict is unchanged.
func benchOpts() uchecker.Options {
	return uchecker.Options{Budgets: uchecker.Budgets{MaxPaths: 20000}}
}

// BenchmarkTableIII runs the full pipeline once per iteration for every
// named Table III application (18 sub-benchmarks).
func BenchmarkTableIII(b *testing.B) {
	apps := append(corpus.KnownVulnerableApps(), corpus.NewVulnApps()...)
	if a, ok := corpus.ByName("Event Registration Pro Calendar 1.0.2"); ok {
		apps = append(apps, a)
	}
	if a, ok := corpus.ByName("Tumult Hype Animations 1.7.1"); ok {
		apps = append(apps, a)
	}
	for _, app := range apps {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			opts := benchOpts()
			for i := 0; i < b.N; i++ {
				row := evalharness.RunApp(app, opts)
				if row.Detected() != app.Paper.Detected {
					b.Fatalf("verdict drift: got %v want %v", row.Detected(), app.Paper.Detected)
				}
			}
		})
	}
}

// BenchmarkComparison regenerates the Section IV-C three-tool comparison
// over the full 44-app corpus per iteration.
func BenchmarkComparison(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		results := evalharness.Comparison(opts)
		if len(results) != 3 {
			b.Fatal("missing tools")
		}
	}
}

// --- per-phase benchmarks ---

// BenchmarkPhaseParse measures the parser on the largest corpus member
// (Joomla-Bible-study, ~95k LoC).
func BenchmarkPhaseParse(b *testing.B) {
	app, _ := corpus.ByName("Joomla-Bible-study 9.1.1")
	var total int
	for _, src := range app.Sources {
		total += len(src)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, src := range app.Sources {
			f, _ := phpparser.Parse(name, src)
			if f == nil {
				b.Fatal("nil file")
			}
		}
	}
}

// BenchmarkPhaseCallgraphLocality measures graph construction plus root
// selection on the same large app.
func BenchmarkPhaseCallgraphLocality(b *testing.B) {
	app, _ := corpus.ByName("Joomla-Bible-study 9.1.1")
	var files []*phpast.File
	for name, src := range app.Sources {
		f, _ := phpparser.Parse(name, src)
		files = append(files, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := callgraph.Build(files)
		res := locality.Analyze(g, files, app.Sources)
		if len(res.Roots) == 0 {
			b.Fatal("no roots")
		}
	}
}

// BenchmarkPhaseSymbolicExecution measures the interpreter on the most
// path-heavy completing app (Avatar Uploader, 9216 paths).
func BenchmarkPhaseSymbolicExecution(b *testing.B) {
	app, _ := corpus.ByName("Avatar Uploader 6.x-1.2")
	var files []*phpast.File
	for name, src := range app.Sources {
		f, _ := phpparser.Parse(name, src)
		files = append(files, f)
	}
	g := callgraph.Build(files)
	res := locality.Analyze(g, files, app.Sources)
	if len(res.Roots) == 0 {
		b.Fatal("no roots")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(files, interp.Options{})
		out := in.RunRoot(res.Roots[0].Node)
		if out.Paths != 9216 {
			b.Fatalf("paths = %d", out.Paths)
		}
	}
}

// --- solver benchmarks ---

// BenchmarkSolverListing4 solves the paper's satisfiable Constraint-2 ∧
// Constraint-3 for Listing 4.
func BenchmarkSolverListing4(b *testing.B) {
	sPath := smt.Var("s_path", smt.SortString)
	sName := smt.Var("s_name", smt.SortString)
	sExt := smt.Var("s_ext", smt.SortString)
	f := smt.And(
		smt.SuffixOf(smt.Str(".php"), smt.Concat(sPath, smt.Str("/"), sName, sExt)),
		smt.Gt(smt.Len(smt.Concat(sName, sExt)), smt.Int(5)),
	)
	solver := smt.NewSolver(smt.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _, err := solver.Check(f)
		if err != nil || st != smt.Sat {
			b.Fatalf("status=%v err=%v", st, err)
		}
	}
}

// BenchmarkSolverWhitelistUnsat solves the benign whitelist refutation
// (in_array expansion vs .php suffix).
func BenchmarkSolverWhitelistUnsat(b *testing.B) {
	ext := smt.Var("s_ext", smt.SortString)
	dst := smt.Concat(smt.Var("s_name", smt.SortString), smt.Str("."), ext)
	f := smt.And(
		smt.Or(smt.Eq(ext, smt.Str("jpg")), smt.Eq(ext, smt.Str("png")), smt.Eq(ext, smt.Str("gif"))),
		smt.SuffixOf(smt.Str(".php"), dst),
	)
	solver := smt.NewSolver(smt.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, _, err := solver.Check(f)
		if err != nil || st != smt.Unsat {
			b.Fatalf("status=%v err=%v", st, err)
		}
	}
}

// BenchmarkSolverSimplify measures the rewriting layer alone.
func BenchmarkSolverSimplify(b *testing.B) {
	x := smt.Var("x", smt.SortString)
	f := smt.And(
		smt.SuffixOf(smt.Str("a.php"), smt.Concat(x, smt.Str("php"))),
		smt.Gt(smt.Len(smt.Concat(smt.Str("dir/"), x)), smt.Int(3)),
		smt.Not(smt.Not(smt.Eq(x, smt.Str("q")))),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if smt.Simplify(f) == nil {
			b.Fatal("nil")
		}
	}
}

// --- ablations ---

// BenchmarkAblationLocality contrasts the pipeline with and without the
// vulnerability-oriented locality analysis on a mid-size app (Foxypress,
// ~16k LoC). The "Off" variant symbolically executes every file and
// function — the workload the paper's Section III-A exists to avoid.
func BenchmarkAblationLocality(b *testing.B) {
	app, _ := corpus.ByName("Foxypress 0.4.1.1-0.4.2.1")
	target := uchecker.Target{Name: app.Name, Sources: app.Sources}
	b.Run("On", func(b *testing.B) {
		scanner := uchecker.NewScanner(benchOpts())
		for i := 0; i < b.N; i++ {
			rep, err := scanner.Scan(context.Background(), target)
			if err != nil || !rep.Vulnerable {
				b.Fatalf("verdict drift (err=%v)", err)
			}
		}
	})
	b.Run("Off", func(b *testing.B) {
		opts := benchOpts()
		opts.DisableLocality = true
		scanner := uchecker.NewScanner(opts)
		for i := 0; i < b.N; i++ {
			rep, err := scanner.Scan(context.Background(), target)
			if err != nil || !rep.Vulnerable {
				b.Fatalf("verdict drift (err=%v)", err)
			}
		}
	})
}

// BenchmarkAblationLoopUnroll varies the loop unroll bound on a
// loop-bearing app.
func BenchmarkAblationLoopUnroll(b *testing.B) {
	src := map[string]string{
		"loop.php": `<?php
$i = 0;
while ($i < $n) {
	$i = $i + 1;
	$chk = strpos($_FILES['f']['name'], '.');
}
move_uploaded_file($_FILES['f']['tmp_name'], "/u/" . $_FILES['f']['name']);
`,
	}
	for _, unroll := range []int{1, 2, 4, 8} {
		unroll := unroll
		b.Run(itoa(unroll), func(b *testing.B) {
			opts := uchecker.Options{Budgets: uchecker.Budgets{LoopUnroll: unroll}}
			scanner := uchecker.NewScanner(opts)
			target := uchecker.Target{Name: "loop", Sources: src}
			for i := 0; i < b.N; i++ {
				rep, err := scanner.Scan(context.Background(), target)
				if err != nil || !rep.Vulnerable {
					b.Fatalf("verdict drift (err=%v)", err)
				}
			}
		})
	}
}

// BenchmarkAblationSolverCandidates varies the bounded-search candidate
// budget on the Listing 4 constraint.
func BenchmarkAblationSolverCandidates(b *testing.B) {
	sPath := smt.Var("s_path", smt.SortString)
	sName := smt.Var("s_name", smt.SortString)
	sExt := smt.Var("s_ext", smt.SortString)
	f := smt.And(
		smt.SuffixOf(smt.Str(".php"), smt.Concat(sPath, smt.Str("/"), sName, sExt)),
		smt.Gt(smt.Len(smt.Concat(sName, sExt)), smt.Int(5)),
	)
	for _, cand := range []int{16, 48, 96, 192} {
		cand := cand
		b.Run(itoa(cand), func(b *testing.B) {
			solver := smt.NewSolver(smt.Options{MaxStrCandidates: cand})
			for i := 0; i < b.N; i++ {
				st, _, _, err := solver.Check(f)
				if err != nil || st != smt.Sat {
					b.Fatalf("status=%v err=%v", st, err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var bs []byte
	for n > 0 {
		bs = append([]byte{byte('0' + n%10)}, bs...)
		n /= 10
	}
	return string(bs)
}

// --- Scanner v2: parallel vs serial ---

// scanTargets is the multi-root corpus workload for the Scanner
// benchmarks: every Table III app scanned as one batch (44+ independent
// roots in aggregate across applications).
func scanTargets() []uchecker.Target {
	apps := corpus.All()
	targets := make([]uchecker.Target, len(apps))
	for i, app := range apps {
		targets[i] = uchecker.Target{Name: app.Name, Sources: app.Sources}
	}
	return targets
}

func benchScanBatch(b *testing.B, workers int) {
	targets := scanTargets()
	opts := benchOpts()
	opts.Workers = workers
	scanner := uchecker.NewScanner(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := scanner.ScanBatch(context.Background(), targets)
		if len(reps) != len(targets) {
			b.Fatalf("reports = %d, want %d", len(reps), len(targets))
		}
		vuln := 0
		for _, rep := range reps {
			if rep.Vulnerable {
				vuln++
			}
		}
		if vuln == 0 {
			b.Fatal("verdict drift: no vulnerable apps in corpus sweep")
		}
	}
}

// parallelWorkers is the pool size for the parallel benchmarks: all
// available cores, but at least 4 so the pool machinery (fan-out, merge)
// is exercised even on single-core CI runners. Wall-clock speedup over
// the serial pair requires GOMAXPROCS > 1.
func parallelWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// BenchmarkScanSerial sweeps the full corpus with Workers=1 — the
// single-worker execution model.
func BenchmarkScanSerial(b *testing.B) { benchScanBatch(b, 1) }

// BenchmarkScanParallel sweeps the same corpus with the parallel worker
// pool; byte-identical reports, lower wall clock on multicore hosts.
func BenchmarkScanParallel(b *testing.B) { benchScanBatch(b, parallelWorkers()) }

// multiRootApp synthesizes one application with n independent upload
// handlers, so the locality analysis selects n roots inside a single Scan
// — the per-root fan-out path (corpus apps are single-root).
func multiRootApp(n int) uchecker.Target {
	sources := map[string]string{}
	for i := 0; i < n; i++ {
		sources[fmt.Sprintf("handler%02d.php", i)] = fmt.Sprintf(`<?php
$dir = "/uploads/%02d";
$name = $_FILES['f%d']['name'];
$ext = strtolower(substr($name, strrpos($name, '.')));
if (strlen($name) > 3 && $ext != '.exe') {
	move_uploaded_file($_FILES['f%d']['tmp_name'], $dir . "/" . $name);
}
`, i, i, i)
	}
	return uchecker.Target{Name: fmt.Sprintf("multi-root-%d", n), Sources: sources}
}

// BenchmarkScanRoots contrasts Workers=1 and the parallel pool on a
// single 32-root application — per-root parallelism inside one Scan.
func BenchmarkScanRoots(b *testing.B) {
	target := multiRootApp(32)
	for _, workers := range []int{1, parallelWorkers()} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			scanner := uchecker.NewScanner(uchecker.Options{Workers: workers})
			for i := 0; i < b.N; i++ {
				rep, err := scanner.Scan(context.Background(), target)
				if err != nil || !rep.Vulnerable || len(rep.Roots) != 32 {
					b.Fatalf("err=%v vulnerable=%v roots=%d", err, rep.Vulnerable, len(rep.Roots))
				}
			}
		})
	}
}

// --- execution engines (make bench-interp) ---

// engineKinds are the two interp.Engine implementations the benchmarks
// below contrast; findings are byte-identical, only dispatch differs.
var engineKinds = []interp.EngineKind{interp.EngineTree, interp.EngineVM}

// BenchmarkEngineCompile measures the one-time bytecode compilation cost
// on the largest corpus member (Joomla-Bible-study, ~95k LoC). The VM
// engine pays this exactly once per Scan, amortized across every root and
// retry rung.
func BenchmarkEngineCompile(b *testing.B) {
	app, _ := corpus.ByName("Joomla-Bible-study 9.1.1")
	var files []*phpast.File
	for name, src := range app.Sources {
		f, _ := phpparser.Parse(name, src)
		files = append(files, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ir.Compile(files)
		if prog.FunctionsCompiled == 0 {
			b.Fatal("nothing compiled")
		}
	}
}

// BenchmarkEngineSymbolicExecution contrasts the tree walker and the
// bytecode VM on the symbolic-execution phase alone — the most path-heavy
// completing corpus app (Avatar Uploader, 9216 paths), with parsing,
// locality, and (for the VM) compilation hoisted out of the loop.
func BenchmarkEngineSymbolicExecution(b *testing.B) {
	app, _ := corpus.ByName("Avatar Uploader 6.x-1.2")
	var files []*phpast.File
	for name, src := range app.Sources {
		f, _ := phpparser.Parse(name, src)
		files = append(files, f)
	}
	g := callgraph.Build(files)
	res := locality.Analyze(g, files, app.Sources)
	if len(res.Roots) == 0 {
		b.Fatal("no roots")
	}
	for _, kind := range engineKinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			engines := interp.NewEngineFactory(kind, files)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := engines.New(interp.Options{}).Run(context.Background(), res.Roots[0].Node)
				if out.Paths != 9216 {
					b.Fatalf("paths = %d", out.Paths)
				}
			}
		})
	}
}

// BenchmarkEngineScanRoots contrasts the engines end-to-end on a single
// 32-root application — compile-once amortization across roots.
func BenchmarkEngineScanRoots(b *testing.B) {
	target := multiRootApp(32)
	for _, kind := range engineKinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			scanner := uchecker.NewScanner(uchecker.Options{Engine: kind})
			for i := 0; i < b.N; i++ {
				rep, err := scanner.Scan(context.Background(), target)
				if err != nil || !rep.Vulnerable || len(rep.Roots) != 32 {
					b.Fatalf("err=%v report=%+v", err, rep)
				}
			}
		})
	}
}

// BenchmarkEngineCorpus contrasts the engines on the full Table III
// corpus sweep — the headline engine-selection number.
func BenchmarkEngineCorpus(b *testing.B) {
	targets := scanTargets()
	for _, kind := range engineKinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			opts := benchOpts()
			opts.Engine = kind
			scanner := uchecker.NewScanner(opts)
			for i := 0; i < b.N; i++ {
				reps := scanner.ScanBatch(context.Background(), targets)
				if len(reps) != len(targets) {
					b.Fatalf("reports = %d, want %d", len(reps), len(targets))
				}
			}
		})
	}
}

// BenchmarkScreening measures the Section IV-B screening workflow: one
// iteration scans 100 generated plugins (5 seeded vulnerabilities).
func BenchmarkScreening(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res := evalharness.Screening(opts, 1, 100, 20)
		if res.Found != res.Planted {
			b.Fatalf("recall drift: %d/%d", res.Found, res.Planted)
		}
	}
}
