// Command ucheckerd runs the UChecker scanner as a long-lived
// scan-as-a-service HTTP daemon: a durable job queue backed by the
// crash-safe scan journal, per-tenant admission control with 429 +
// Retry-After load shedding, weighted-fair scheduling, SSE progress
// streaming and Prometheus metrics.
//
// Usage:
//
//	ucheckerd -dir STATE_DIR [flags]
//
// Flags:
//
//	-dir DIR             daemon state directory (job journal, result
//	                     cache, source spool); REQUIRED. Restarting with
//	                     the same -dir resumes every pending job and
//	                     serves finished results without re-scanning.
//	-addr HOST:PORT      listen address (default :8799)
//	-scan-workers N      concurrently running jobs (default 2)
//	-workers N           per-scan worker pool (default: GOMAXPROCS)
//	-engine NAME         symbolic-execution engine: "tree" or "vm"
//	-interproc NAME      interprocedural strategy: "inline" (default) or
//	                     "summary" (per-function symbolic summaries; the
//	                     summary_*/interp_paths_avoided counters surface
//	                     in /metrics)
//	-max-paths N         symbolic execution path budget per job
//	-job-timeout D       per-job scan deadline (0 disables); a job whose
//	                     scan ignores cancellation past the deadline +
//	                     grace is failed by the watchdog
//	-watchdog-grace D    wedge-detection window past -job-timeout
//	                     (default 5s)
//	-rate R              default tenant sustained submit rate per second
//	                     (0 = unlimited)
//	-burst N             default tenant burst allowance (default 4)
//	-max-queue N         default tenant queue bound (default 256)
//	-journal-max-records N   auto-compact the job journal past N records
//	-journal-max-bytes N     auto-compact the job journal past N bytes
//
// Endpoints:
//
//	POST   /jobs?tenant=T&name=N  submit JSON {"name","sources"} or a
//	                              (gzipped) tarball body; 202 with the
//	                              job, 429 + Retry-After when shed
//	GET    /jobs/{id}             status
//	GET    /jobs/{id}/result      canonical report (finished jobs)
//	GET    /jobs/{id}/events      SSE lifecycle + span progress stream
//	DELETE /jobs/{id}             cancel
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness
//
// SIGTERM drains gracefully: in-flight jobs finish and journal, queued
// jobs stay submitted in the journal, and the next start with the same
// -dir re-enqueues them. SIGINT (or a second SIGTERM) hard-stops.
//
// Exit status: 0 clean shutdown (drain completed), 2 startup or serve
// error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/interp"
	"repro/internal/scand"
	"repro/internal/uchecker"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir           = flag.String("dir", "", "daemon state directory (required)")
		addr          = flag.String("addr", ":8799", "listen address")
		scanWorkers   = flag.Int("scan-workers", 2, "concurrently running jobs")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "per-scan worker pool")
		engine        = flag.String("engine", "", `symbolic-execution engine: "tree" or "vm"`)
		interproc     = flag.String("interproc", "", `interprocedural strategy: "inline" or "summary"`)
		maxPaths      = flag.Int("max-paths", 0, "symbolic execution path budget per job (0 = default)")
		jobTimeout    = flag.Duration("job-timeout", 0, "per-job scan deadline (0 disables)")
		watchdogGrace = flag.Duration("watchdog-grace", 0, "wedge window past -job-timeout (default 5s)")
		rate          = flag.Float64("rate", 0, "default tenant submit rate per second (0 = unlimited)")
		burst         = flag.Int("burst", 4, "default tenant burst allowance")
		maxQueue      = flag.Int("max-queue", 0, "default tenant queue bound (0 = 256)")
		maxRecords    = flag.Int("journal-max-records", 0, "auto-compact the job journal past N records (0 disables)")
		maxBytes      = flag.Int64("journal-max-bytes", 0, "auto-compact the job journal past N bytes (0 disables)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ucheckerd: -dir is required")
		flag.Usage()
		return 2
	}
	var engineKind interp.EngineKind
	switch *engine {
	case "", "tree":
		engineKind = interp.EngineTree
	case "vm":
		engineKind = interp.EngineVM
	default:
		fmt.Fprintf(os.Stderr, "ucheckerd: unknown -engine %q (want tree or vm)\n", *engine)
		return 2
	}
	interprocKind, err := interp.ParseInterprocKind(*interproc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucheckerd: %v\n", err)
		return 2
	}

	cfg := scand.Config{
		Dir: *dir,
		Scan: uchecker.Options{
			Workers:   *workers,
			Engine:    engineKind,
			Interproc: interprocKind,
			Budgets:   uchecker.Budgets{MaxPaths: *maxPaths},
		},
		ScanWorkers:   *scanWorkers,
		JobTimeout:    *jobTimeout,
		WatchdogGrace: *watchdogGrace,
		Default: scand.TenantPolicy{
			RatePerSec: *rate,
			Burst:      *burst,
			MaxQueue:   *maxQueue,
		},
		MaxJournalRecords: *maxRecords,
		MaxJournalBytes:   *maxBytes,
	}
	d, err := scand.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucheckerd: %v\n", err)
		return 2
	}

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ucheckerd: serving on %s (state: %s)\n", *addr, *dir)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)

	select {
	case err := <-serveErr:
		d.Close()
		fmt.Fprintf(os.Stderr, "ucheckerd: serve: %v\n", err)
		return 2
	case sig := <-sigCh:
		if sig == syscall.SIGTERM {
			// Graceful drain: stop accepting, let in-flight jobs finish
			// and journal, leave queued jobs durable for the next start.
			// A second signal during the drain hard-stops.
			fmt.Fprintln(os.Stderr, "ucheckerd: SIGTERM: draining (in-flight jobs finish; queued jobs resume on restart)")
			drained := make(chan error, 1)
			go func() { drained <- d.Drain() }()
			select {
			case err := <-drained:
				shutdownHTTP(srv)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ucheckerd: drain: %v\n", err)
					return 2
				}
				fmt.Fprintln(os.Stderr, "ucheckerd: drained")
				return 0
			case <-sigCh:
				fmt.Fprintln(os.Stderr, "ucheckerd: second signal: hard stop")
				d.Close()
				shutdownHTTP(srv)
				return 0
			}
		}
		fmt.Fprintln(os.Stderr, "ucheckerd: interrupt: hard stop (in-flight scans abandoned; they re-run on restart)")
		d.Close()
		shutdownHTTP(srv)
		return 0
	}
}

func shutdownHTTP(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
	}
}
