package main

import (
	"regexp"
	"strings"
	"testing"
)

func mkDoc(results ...result) *doc {
	return &doc{Env: map[string]string{}, Results: results}
}

func res(name string, ns, allocs float64) result {
	return result{
		Name:       name,
		Iterations: 10,
		Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocs, "B/op": 1 << 20},
	}
}

func TestParseBench(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: repro
cpu: test-cpu
BenchmarkEngineSymbolicExecution/vm-8   16   129412136 ns/op   74034659 B/op   265257 allocs/op
PASS
`
	d, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(d.Results))
	}
	r := d.Results[0]
	if r.Name != "BenchmarkEngineSymbolicExecution/vm-8" || r.Iterations != 16 {
		t.Errorf("bad result header: %+v", r)
	}
	if r.Metrics["ns/op"] != 129412136 || r.Metrics["allocs/op"] != 265257 {
		t.Errorf("bad metrics: %v", r.Metrics)
	}
	if d.Env["goos"] != "linux" || d.Env["pkg"] != "repro" {
		t.Errorf("bad env: %v", d.Env)
	}
}

func TestDiffWithinThreshold(t *testing.T) {
	base := mkDoc(res("BenchmarkEngineSymbolicExecution/vm-8", 100, 1000))
	fresh := mkDoc(res("BenchmarkEngineSymbolicExecution/vm-8", 114, 1000))
	var sb strings.Builder
	if n := diff(base, fresh, regexp.MustCompile(""), 15, &sb); n != 0 {
		t.Fatalf("14%% drift flagged as regression:\n%s", sb.String())
	}
}

func TestDiffNsRegression(t *testing.T) {
	base := mkDoc(res("BenchmarkEngineSymbolicExecution/vm-8", 100, 1000))
	fresh := mkDoc(res("BenchmarkEngineSymbolicExecution/vm-8", 120, 1000))
	var sb strings.Builder
	if n := diff(base, fresh, regexp.MustCompile(""), 15, &sb); n != 1 {
		t.Fatalf("got %d regressions, want 1 (ns/op +20%%):\n%s", n, sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("report lacks FAIL line:\n%s", sb.String())
	}
}

func TestDiffAllocRegression(t *testing.T) {
	base := mkDoc(res("b", 100, 1000))
	fresh := mkDoc(res("b", 100, 1200))
	if n := diff(base, fresh, regexp.MustCompile(""), 15, &strings.Builder{}); n != 1 {
		t.Fatalf("got %d regressions, want 1 (allocs/op +20%%)", n)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := mkDoc(res("b", 100, 1000))
	fresh := mkDoc(res("b", 50, 500))
	if n := diff(base, fresh, regexp.MustCompile(""), 15, &strings.Builder{}); n != 0 {
		t.Fatalf("improvement flagged as regression")
	}
}

func TestDiffMissingBenchFails(t *testing.T) {
	base := mkDoc(res("BenchmarkEngineCompile-8", 100, 1000))
	fresh := mkDoc()
	if n := diff(base, fresh, regexp.MustCompile(""), 15, &strings.Builder{}); n != 1 {
		t.Fatalf("dropped benchmark not flagged")
	}
}

func TestDiffMatchFilter(t *testing.T) {
	base := mkDoc(res("BenchmarkEngineCompile-8", 100, 1000), res("BenchmarkOther-8", 100, 1000))
	fresh := mkDoc(res("BenchmarkEngineCompile-8", 100, 1000), res("BenchmarkOther-8", 500, 1000))
	re := regexp.MustCompile("^BenchmarkEngine")
	if n := diff(base, fresh, re, 15, &strings.Builder{}); n != 0 {
		t.Fatalf("-match did not exclude non-engine regression")
	}
}
