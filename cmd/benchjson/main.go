// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark numbers can be archived and
// diffed across commits (e.g. make bench-smt > BENCH_smt.json).
//
//	go test -run '^$' -bench . -benchmem ./internal/smt | go run ./cmd/benchjson
//
// The output is an object with the benchmarking environment (goos,
// goarch, cpu, pkg lines as emitted by the test binary) and one entry per
// benchmark result line: name, iterations, and every "value unit" metric
// pair (ns/op, B/op, allocs/op, custom ReportMetric units, …).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Env     map[string]string `json:"env"`
	Results []result          `json:"results"`
}

func main() {
	out := doc{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			out.Env["pkg"] = appendPkg(out.Env["pkg"], pkg)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line, pkg); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func appendPkg(cur, pkg string) string {
	if cur == "" {
		return pkg
	}
	return cur + " " + pkg
}

// parseResult parses one benchmark line:
//
//	BenchmarkName/sub-8   100  11111 ns/op  2222 B/op  33 allocs/op
func parseResult(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       fields[0],
		Package:    pkg,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
