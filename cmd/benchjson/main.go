// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark numbers can be archived and
// diffed across commits (e.g. make bench-smt > BENCH_smt.json).
//
//	go test -run '^$' -bench . -benchmem ./internal/smt | go run ./cmd/benchjson
//
// The output is an object with the benchmarking environment (goos,
// goarch, cpu, pkg lines as emitted by the test binary) and one entry per
// benchmark result line: name, iterations, and every "value unit" metric
// pair (ns/op, B/op, allocs/op, custom ReportMetric units, …).
//
// With -baseline, benchjson additionally diffs the fresh run against a
// previously archived JSON document and exits non-zero when ns/op or
// allocs/op regresses by more than -max-regress percent on any benchmark
// (optionally filtered by -match). This is the CI regression gate for
// the engine benchmarks:
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem . |
//	  go run ./cmd/benchjson -baseline BENCH_interp.json -out BENCH_interp.new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Env     map[string]string `json:"env"`
	Results []result          `json:"results"`
}

// gatedMetrics are the metrics the -baseline diff enforces. Wall time
// and allocation count regress for real reasons; B/op is deliberately
// left out (it tracks allocs/op and double-reports the same failure).
var gatedMetrics = []string{"ns/op", "allocs/op"}

func main() {
	baseline := flag.String("baseline", "", "archived benchjson JSON to diff the fresh run against; exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 15, "maximum allowed regression in percent for ns/op and allocs/op")
	match := flag.String("match", "", "regexp restricting which benchmarks the -baseline diff gates (default: all)")
	out := flag.String("out", "", "write the fresh JSON document to this file instead of stdout")
	flag.Parse()

	fresh, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fresh); err != nil {
		fatalf("%v", err)
	}

	if *baseline == "" {
		return
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatalf("%v", err)
	}
	var base doc
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("parse baseline %s: %v", *baseline, err)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fatalf("bad -match: %v", err)
	}
	regressions := diff(&base, fresh, re, *maxRegress, os.Stderr)
	if regressions > 0 {
		fatalf("%d benchmark regression(s) beyond %.0f%% vs %s", regressions, *maxRegress, *baseline)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// diff compares every baseline benchmark whose name matches re against
// the fresh run, writes a per-metric report to w, and returns the number
// of gated metrics that regressed by more than maxRegress percent. A
// matching baseline benchmark missing from the fresh run counts as a
// regression: the gate must not silently pass because a bench was
// renamed or dropped.
func diff(base, fresh *doc, re *regexp.Regexp, maxRegress float64, w io.Writer) int {
	byName := make(map[string]result, len(fresh.Results))
	for _, r := range fresh.Results {
		byName[r.Name] = r
	}
	regressions := 0
	for _, b := range base.Results {
		if !re.MatchString(b.Name) {
			continue
		}
		f, ok := byName[b.Name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: present in baseline, missing from fresh run\n", b.Name)
			regressions++
			continue
		}
		for _, m := range gatedMetrics {
			bv, bok := b.Metrics[m]
			fv, fok := f.Metrics[m]
			if !bok || !fok || bv == 0 {
				continue
			}
			pct := (fv - bv) / bv * 100
			status := "ok  "
			if pct > maxRegress {
				status = "FAIL"
				regressions++
			}
			fmt.Fprintf(w, "%s %s %s: %.0f -> %.0f (%+.1f%%)\n", status, b.Name, m, bv, fv, pct)
		}
	}
	return regressions
}

// parseBench reads `go test -bench` text output into a doc.
func parseBench(r io.Reader) (*doc, error) {
	out := &doc{Env: map[string]string{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			out.Env["pkg"] = appendPkg(out.Env["pkg"], pkg)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line, pkg); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func appendPkg(cur, pkg string) string {
	if cur == "" {
		return pkg
	}
	return cur + " " + pkg
}

// parseResult parses one benchmark line:
//
//	BenchmarkName/sub-8   100  11111 ns/op  2222 B/op  33 allocs/op
func parseResult(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       fields[0],
		Package:    pkg,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
