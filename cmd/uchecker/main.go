// Command uchecker scans PHP applications for unrestricted file upload
// vulnerabilities, implementing the UChecker pipeline end to end.
//
// Usage:
//
//	uchecker [flags] <dir|file.php> [more paths...]
//	uchecker [flags] -corpus "<app name>"     # scan a built-in corpus app
//	uchecker -list-corpus                     # list corpus app names
//
// Flags:
//
//	-json           emit the report as JSON
//	-sarif          emit the report as SARIF 2.1.0 (GitHub code scanning)
//	-smt            print each finding's SMT-LIB2 script
//	-ext LIST       comma-separated executable extensions (default ".php,.php5")
//	-admin-gating   model add_action('admin_menu', ...) gating (Section VI)
//	-max-paths N    symbolic execution path budget
//	-v              verbose: also print per-phase measurements
//
// Exit status: 0 not vulnerable, 1 vulnerable, 2 usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
		sarifOut    = flag.Bool("sarif", false, "emit the report as SARIF 2.1.0")
		smtOut      = flag.Bool("smt", false, "print each finding's SMT-LIB2 script")
		exts        = flag.String("ext", ".php,.php5", "comma-separated executable extensions")
		adminGating = flag.Bool("admin-gating", false, "model admin_menu gating (Section VI extension)")
		maxPaths    = flag.Int("max-paths", 0, "symbolic execution path budget (0 = default)")
		corpusApp   = flag.String("corpus", "", "scan the named built-in corpus application")
		listCorpus  = flag.Bool("list-corpus", false, "list built-in corpus application names")
		verbose     = flag.Bool("v", false, "verbose measurements")
	)
	flag.Parse()

	if *listCorpus {
		for _, app := range corpus.All() {
			fmt.Printf("%-60s %s\n", app.Name, app.Category)
		}
		return 0
	}

	opts := core.Options{
		Extensions:       splitExts(*exts),
		ModelAdminGating: *adminGating,
		KeepSMT:          *smtOut,
		Interp:           interp.Options{MaxPaths: *maxPaths},
	}

	var name string
	var sources map[string]string
	switch {
	case *corpusApp != "":
		app, ok := corpus.ByName(*corpusApp)
		if !ok {
			fmt.Fprintf(os.Stderr, "uchecker: unknown corpus app %q (try -list-corpus)\n", *corpusApp)
			return 2
		}
		name, sources = app.Name, app.Sources
	case flag.NArg() > 0:
		var err error
		name, sources, err = loadPaths(flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
			return 2
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: uchecker [flags] <dir|file.php>... (see -h)")
		return 2
	}

	rep := core.New(opts).CheckSources(name, sources)

	if *sarifOut {
		data, err := report.ToSARIF(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
			return 2
		}
		fmt.Println(string(data))
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
			return 2
		}
	} else {
		printReport(os.Stdout, rep, *verbose, *smtOut)
	}
	if rep.Vulnerable {
		return 1
	}
	return 0
}

func splitExts(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.HasPrefix(e, ".") {
			e = "." + e
		}
		out = append(out, e)
	}
	return out
}

// loadPaths reads .php files from the given files/directories.
func loadPaths(paths []string) (string, map[string]string, error) {
	sources := map[string]string{}
	name := strings.TrimSuffix(filepath.Base(paths[0]), ".php")
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return "", nil, err
		}
		if !info.IsDir() {
			data, err := os.ReadFile(p)
			if err != nil {
				return "", nil, err
			}
			sources[p] = string(data)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".php") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sources[path] = string(data)
			return nil
		})
		if err != nil {
			return "", nil, err
		}
	}
	if len(sources) == 0 {
		return "", nil, fmt.Errorf("no .php files under %v", paths)
	}
	return name, sources, nil
}

func printReport(w io.Writer, rep *core.AppReport, verbose, smtOut bool) {
	verdict := "NOT VULNERABLE"
	if rep.Vulnerable {
		verdict = "VULNERABLE"
	}
	if rep.BudgetExceeded {
		verdict += " (analysis incomplete: budget exceeded)"
	}
	fmt.Fprintf(w, "%s: %s\n", rep.Name, verdict)
	fmt.Fprintf(w, "  %d LoC, %.2f%% symbolically executed, %d paths, %d objects, %d sink candidates\n",
		rep.TotalLoC, rep.PercentAnalyzed, rep.Paths, rep.Objects, rep.SinkCount)
	if verbose {
		fmt.Fprintf(w, "  roots: %s\n", strings.Join(rep.Roots, ", "))
		fmt.Fprintf(w, "  %.1f MB, %.3f s, %d parse errors\n", rep.MemoryMB, rep.Seconds, rep.ParseErrors)
	}
	for _, f := range rep.Findings {
		gate := ""
		if f.AdminGated {
			gate = " [admin-gated]"
		}
		fmt.Fprintf(w, "\n  finding: %s at %s:%d%s\n", f.Sink, f.File, f.Line, gate)
		fmt.Fprintf(w, "    relevant lines: %v\n", f.Lines)
		if f.ExploitPath != "" {
			fmt.Fprintf(w, "    exploit lands at: %q\n", f.ExploitPath)
		}
		fmt.Fprintf(w, "    se_dst   = %s\n", f.SeDst)
		if f.SeReach != "nil" && f.SeReach != "" {
			fmt.Fprintf(w, "    se_reach = %s\n", f.SeReach)
		}
		fmt.Fprintf(w, "    witness:\n")
		for k, v := range f.Witness {
			fmt.Fprintf(w, "      %s = %s\n", k, v)
		}
		if smtOut && f.SMTLIB != "" {
			fmt.Fprintf(w, "    SMT-LIB2:\n%s\n", indentLines(f.SMTLIB, "      "))
		}
	}
}

func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
