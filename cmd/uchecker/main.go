// Command uchecker scans PHP applications for unrestricted file upload
// vulnerabilities, implementing the UChecker pipeline end to end.
//
// Usage:
//
//	uchecker [flags] <dir|file.php> [more targets...]
//	uchecker [flags] -corpus "<app name>"     # scan a built-in corpus app
//	uchecker -list-corpus                     # list corpus app names
//	uchecker -worker -coord DIR <targets...>  # join a distributed scan fleet
//
// Each positional path is scanned as its own application; multiple paths
// run concurrently through Scanner.ScanBatch.
//
// Flags:
//
//	-json                emit the report(s) as JSON
//	-sarif               emit the report as SARIF 2.1.0 (GitHub code scanning)
//	-smt                 print each finding's SMT-LIB2 script
//	-ext LIST            comma-separated executable extensions (default ".php,.php5")
//	-admin-gating        model add_action('admin_menu', ...) gating (Section VI)
//	-max-paths N         symbolic execution path budget
//	-engine NAME         symbolic-execution engine: "tree" (the recursive
//	                     AST walker, default) or "vm" (compile each
//	                     function once to bytecode, dispatch a VM);
//	                     findings are byte-identical either way
//	-interproc NAME      interprocedural strategy: "inline" (inline every
//	                     user-function call, default — the paper's
//	                     semantics, including its budget-exhaustion
//	                     misses) or "summary" (per-function symbolic
//	                     summaries with statement-boundary path merging;
//	                     escaped callees still inline)
//	-workers N           worker pool size for per-root and per-app parallelism
//	                     (default: GOMAXPROCS)
//	-timeout D           abort the scan after D (e.g. 30s, 5m); partial
//	                     results are still reported
//	-root-timeout D      per-root wall-clock budget; a root exceeding it
//	                     fails with a root-timeout failure and enters the
//	                     degradation ladder instead of stalling the scan
//	-retries N           degradation-ladder retries per failed root
//	                     (0 = default, negative disables)
//	-max-root-failures N abort an app's scan after N root failures
//	-no-degraded         disable the degradation ladder (paper semantics:
//	                     a budget abort is a silent miss)
//	-trace FILE          write a Chrome trace-event JSON file of the scan's
//	                     span tree (open in chrome://tracing or Perfetto);
//	                     "-" writes to stdout
//	-metrics FILE        write the per-app work counters in Prometheus text
//	                     exposition format; "-" writes to stdout
//	-journal FILE        append a crash-safe scan journal: batch manifest,
//	                     per-target start/finish and the full report, each
//	                     record checksummed and fsynced
//	-resume FILE         resume from a previous journal: completed targets
//	                     are replayed byte-identically, in-flight ones are
//	                     re-scanned; pass the same FILE to -journal and
//	                     -resume to continue a killed sweep in place
//	-cache DIR           content-addressed result cache: unchanged targets
//	                     (same sources and same analysis options) are
//	                     served from DIR instead of re-scanned
//	-cache-verify        re-checksum every -cache entry, prune corrupt
//	                     ones, print a summary, and exit
//	-worker -coord DIR   join DIR as one worker of a distributed fleet:
//	                     the target list (identical across workers) is
//	                     partitioned into leased shards; workers claim,
//	                     scan and publish shards, reclaim leases from
//	                     crashed workers (fencing tokens keep zombies
//	                     out), and the last one folds DIR/merged.json —
//	                     byte-identical to a single-process sweep.
//	                     SIGTERM drains gracefully: in-flight targets
//	                     finish and journal, leases are released, exit 2.
//	-worker-id NAME      worker name in lease records (default: w<pid>)
//	-shard-size N        targets per lease shard (default: 8)
//	-lease-renew D       lease heartbeat interval (default: 250ms)
//	-lease-check D       observation window before presuming a lease
//	                     holder dead and reclaiming (default: 1s)
//	-v                   verbose: also print per-phase measurements, the
//	                     per-class failure summary and the batch
//	                     replay/cache counters
//
// Exit status:
//
//	0  scan completed cleanly, nothing vulnerable
//	1  at least one target vulnerable
//	2  usage/IO error, scan aborted by -timeout, any root/file failed
//	   (panic, budget exhaustion, solver give-up, root timeout), or a
//	   -worker that drained on SIGTERM before the fleet finished
//
// Scan errors take precedence over findings: exit 1 means the verdicts
// are complete AND something is vulnerable; exit 2 means the verdicts may
// be incomplete (partial reports are still printed).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
		sarifOut    = flag.Bool("sarif", false, "emit the report as SARIF 2.1.0")
		smtOut      = flag.Bool("smt", false, "print each finding's SMT-LIB2 script")
		exts        = flag.String("ext", ".php,.php5", "comma-separated executable extensions")
		adminGating = flag.Bool("admin-gating", false, "model admin_menu gating (Section VI extension)")
		maxPaths    = flag.Int("max-paths", 0, "symbolic execution path budget (0 = default)")
		engine      = flag.String("engine", "", "symbolic-execution engine: tree (default) or vm")
		interproc   = flag.String("interproc", "", "interprocedural strategy: inline (default) or summary")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "abort the scan after this duration (0 = none)")
		rootTimeout = flag.Duration("root-timeout", 0, "per-root wall-clock budget (0 = none)")
		retries     = flag.Int("retries", 0, "degradation-ladder retries per failed root (0 = default, negative disables)")
		maxFailures = flag.Int("max-root-failures", 0, "abort an app's scan after N root failures (0 = no limit)")
		noDegraded  = flag.Bool("no-degraded", false, "disable the degradation ladder (budget aborts become silent misses)")
		noIntern    = flag.Bool("no-intern", false, "disable SMT term interning/memoization (ablation; findings are identical)")
		corpusApp   = flag.String("corpus", "", "scan the named built-in corpus application")
		listCorpus  = flag.Bool("list-corpus", false, "list built-in corpus application names")
		traceOut    = flag.String("trace", "", "write Chrome trace-event JSON to this file (\"-\" = stdout)")
		metricsOut  = flag.String("metrics", "", "write Prometheus text metrics to this file (\"-\" = stdout)")
		journalOut  = flag.String("journal", "", "append a crash-safe scan journal to this file")
		resumeFrom  = flag.String("resume", "", "resume from a previous scan journal (replay completed targets)")
		cacheDir    = flag.String("cache", "", "content-addressed result cache directory")
		cacheVerify = flag.Bool("cache-verify", false, "verify the -cache directory, prune corrupt entries, and exit")
		workerMode  = flag.Bool("worker", false, "run as one distributed fleet worker (requires -coord)")
		coordDir    = flag.String("coord", "", "shared coordination directory for -worker mode")
		workerID    = flag.String("worker-id", "", "worker name in lease records (default: w<pid>)")
		shardSize   = flag.Int("shard-size", 0, "targets per lease shard in -worker mode (0 = default)")
		leaseRenew  = flag.Duration("lease-renew", 0, "lease heartbeat interval in -worker mode (0 = default)")
		leaseCheck  = flag.Duration("lease-check", 0, "stale-lease observation window in -worker mode (0 = default)")
		verbose     = flag.Bool("v", false, "verbose measurements")
	)
	flag.Parse()

	if *cacheVerify {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "uchecker: -cache-verify requires -cache DIR")
			return 2
		}
		ok, bad, err := core.VerifyCache(*cacheDir, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: verifying cache: %v\n", err)
			return 2
		}
		fmt.Printf("cache %s: %d entries ok, %d corrupt (pruned)\n", *cacheDir, ok, bad)
		return 0
	}

	if *listCorpus {
		for _, app := range corpus.All() {
			fmt.Printf("%-60s %s\n", app.Name, app.Category)
		}
		return 0
	}

	extList := splitExts(*exts)
	engineKind, err := interp.ParseEngineKind(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
		return 2
	}
	interprocKind, err := interp.ParseInterprocKind(*interproc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
		return 2
	}
	var rec *core.TraceRecorder
	if *traceOut != "" {
		rec = core.NewTraceRecorder()
	}
	opts := core.Options{
		Trace:            rec,
		Extensions:       extList,
		ModelAdminGating: *adminGating,
		KeepSMT:          *smtOut,
		Workers:          *workers,
		Budgets:          core.Budgets{MaxPaths: *maxPaths},
		Engine:           engineKind,
		Interproc:        interprocKind,
		RootTimeout:      *rootTimeout,
		MaxRetries:       *retries,
		MaxRootFailures:  *maxFailures,
		DisableDegraded:  *noDegraded,
		DisableIntern:    *noIntern,
		Journal:          *journalOut,
		ResumeFrom:       *resumeFrom,
		CacheDir:         *cacheDir,
	}

	var targets []core.Target
	switch {
	case *corpusApp != "":
		app, ok := corpus.ByName(*corpusApp)
		if !ok {
			fmt.Fprintf(os.Stderr, "uchecker: unknown corpus app %q (try -list-corpus)\n", *corpusApp)
			return 2
		}
		targets = append(targets, core.Target{Name: app.Name, Sources: app.Sources})
	case flag.NArg() > 0:
		for _, p := range flag.Args() {
			t, err := loadTarget(p, extList)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
				return 2
			}
			targets = append(targets, t)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: uchecker [flags] <dir|file.php>... (see -h)")
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *workerMode || *coordDir != "" {
		if !*workerMode || *coordDir == "" {
			fmt.Fprintln(os.Stderr, "uchecker: -worker and -coord DIR go together")
			return 2
		}
		if opts.Journal != "" || opts.ResumeFrom != "" || opts.CacheDir != "" {
			fmt.Fprintln(os.Stderr, "uchecker: -worker manages its own shard journals and cache under -coord; drop -journal/-resume/-cache")
			return 2
		}
		return runWorker(ctx, opts, targets, core.WorkerOptions{
			CoordDir:           *coordDir,
			WorkerID:           *workerID,
			ShardSize:          *shardSize,
			RenewInterval:      *leaseRenew,
			LeaseCheckInterval: *leaseCheck,
		}, *jsonOut, *smtOut, *verbose)
	}

	scanner := core.NewScanner(opts)
	reps, stats, batchErr := scanner.ScanBatchJournaled(ctx, targets)

	switch {
	case *sarifOut:
		for _, rep := range reps {
			data, err := report.ToSARIF(rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
				return 2
			}
			fmt.Println(string(data))
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, rep := range reps {
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
				return 2
			}
		}
	default:
		for i, rep := range reps {
			if i > 0 {
				fmt.Println()
			}
			printReport(os.Stdout, rep, *verbose, *smtOut)
		}
	}
	if *verbose && (*journalOut != "" || *resumeFrom != "" || *cacheDir != "") {
		fmt.Printf("\nbatch: %d targets, %d scanned, %d replayed, %d cache hits, %d misses, %d journal records salvaged\n",
			stats.Targets, stats.Scanned, stats.Replayed, stats.CacheHits, stats.CacheMisses, stats.SalvagedRecords)
		for _, fl := range stats.Failures {
			fmt.Printf("batch failure: %s\n", fl)
		}
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, func(w io.Writer) error {
			return core.WriteChromeTrace(w, rec.Snapshot())
		}); err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: writing trace: %v\n", err)
			return 2
		}
	}
	if *metricsOut != "" {
		series := make([]core.LabeledMetrics, 0, len(reps)+1)
		for _, rep := range reps {
			series = append(series, core.LabeledMetrics{
				Labels:  map[string]string{"app": rep.Name},
				Metrics: rep.Metrics,
			})
		}
		if len(stats.Metrics) > 0 {
			series = append(series, core.LabeledMetrics{
				Labels:  map[string]string{"scope": "batch"},
				Metrics: stats.Metrics,
			})
		}
		if err := writeTo(*metricsOut, func(w io.Writer) error {
			return core.WritePrometheus(w, "uchecker", series)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "uchecker: writing metrics: %v\n", err)
			return 2
		}
	}
	if batchErr != nil {
		fmt.Fprintf(os.Stderr, "uchecker: scan aborted: %v\n", batchErr)
	} else if code := exitCode(nil, reps); code == 2 {
		fmt.Fprintln(os.Stderr, "uchecker: scan completed with failures (see -v for the per-class summary)")
	}
	return exitCode(batchErr, reps)
}

// runWorker runs the process as one member of a distributed scan fleet
// (-worker -coord DIR). Every worker is launched with the same target
// list; the coordination directory partitions it into leased shards,
// crashes are recovered by lease reclaim + fencing, and whichever
// worker finds every shard finished folds the merged report.
//
// SIGTERM drains gracefully: in-flight targets finish and journal, held
// leases are released for the rest of the fleet, and the worker exits 2
// (the sweep is incomplete from this process's point of view). When the
// fleet completes, the exit status is computed from the merged report
// exactly like a single-process sweep.
func runWorker(ctx context.Context, opts core.Options, targets []core.Target, wo core.WorkerOptions, jsonOut, smtOut, verbose bool) int {
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		close(drain)
	}()
	wo.Drain = drain

	scanner := core.NewScanner(opts)
	ws, err := scanner.RunWorker(ctx, targets, wo)
	if ws != nil {
		fmt.Fprintf(os.Stderr, "uchecker: worker %s: %d shards published (%d reclaimed from dead workers), %d leases lost to reclaim\n",
			ws.Worker, ws.ShardsScanned, ws.ShardsReclaimed, ws.Fenced)
		if verbose {
			keys := make([]string, 0, len(ws.Metrics))
			for k := range ws.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(os.Stderr, "uchecker: worker metric %s=%d\n", k, ws.Metrics[k])
			}
		}
	}
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "uchecker: worker aborted: %v\n", err)
		return 2
	case ws.Drained:
		fmt.Fprintln(os.Stderr, "uchecker: worker drained: finished targets are journaled, leases released; run another worker with the same -coord to complete the sweep")
		return 2
	case ws.MergedPath == "":
		// RunWorker's nil-error exits are drain or merged fold, so this
		// is unreachable; fail safe instead of claiming completion.
		fmt.Fprintln(os.Stderr, "uchecker: worker exited without a merged report")
		return 2
	}

	reps, err := core.ReadMerged(ws.MergedPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uchecker: reading merged report: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "uchecker: sweep complete: %d targets merged into %s\n", len(reps), ws.MergedPath)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, rep := range reps {
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "uchecker: %v\n", err)
				return 2
			}
		}
	} else {
		for i, rep := range reps {
			if i > 0 {
				fmt.Println()
			}
			printReport(os.Stdout, rep, verbose, smtOut)
		}
	}
	if code := exitCode(nil, reps); code != 0 {
		if code == 2 {
			fmt.Fprintln(os.Stderr, "uchecker: sweep completed with failures")
		}
		return code
	}
	return 0
}

// exitCode maps a batch outcome to the process exit status: 2 when the
// scan was aborted or any root/file failed (the verdicts may be
// incomplete), else 1 when any target is vulnerable, else 0. Scan errors
// take precedence over findings — exit 1 certifies complete verdicts.
func exitCode(ctxErr error, reps []*core.AppReport) int {
	if ctxErr != nil {
		return 2
	}
	code := 0
	for _, rep := range reps {
		if rep.Aborted || len(rep.FailureCounts) > 0 {
			return 2
		}
		if rep.Vulnerable {
			code = 1
		}
	}
	return code
}

// writeTo streams one export to a file path, or to stdout for "-". File
// writes are atomic (temp file + rename): a failure mid-export leaves
// any previous file byte-identical instead of half-overwritten.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	return core.AtomicWrite(path, write)
}

func splitExts(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.HasPrefix(e, ".") {
			e = "." + e
		}
		out = append(out, e)
	}
	return out
}

// loadTarget reads one application from a file or directory. Directory
// walks accept every configured executable extension plus ".inc" (PHP
// include files routinely carry upload handlers), not just ".php".
//
// Unreadable files and broken directory entries (permission errors,
// symlink loops, files deleted mid-walk) do not abort the target: each
// is recorded as a typed load-stage Failure on the eventual report, so
// a partially loaded application is scanned with what could be read and
// is visibly partial in the verdict (exit status 2). Only a completely
// unreadable target — nothing loaded, or the root path itself missing —
// is an error.
func loadTarget(p string, exts []string) (core.Target, error) {
	accept := make(map[string]bool, len(exts)+1)
	for _, e := range exts {
		accept[strings.ToLower(e)] = true
	}
	accept[".inc"] = true

	sources := map[string]string{}
	var loadFailures []core.Failure
	fail := func(path string, err error) {
		loadFailures = append(loadFailures, core.Failure{
			Root:  path,
			Stage: core.StageLoad,
			Class: core.FailLoad, // an I/O failure, not a parser failure
			Err:   err.Error(),
		})
	}
	name := filepath.Base(p)
	if ext := filepath.Ext(name); accept[strings.ToLower(ext)] {
		name = strings.TrimSuffix(name, ext)
	}
	info, err := os.Stat(p)
	if err != nil {
		return core.Target{}, err
	}
	if !info.IsDir() {
		data, err := os.ReadFile(p)
		if err != nil {
			return core.Target{}, err
		}
		sources[p] = string(data)
		return core.Target{Name: name, Sources: sources}, nil
	}
	err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			// Unreadable directory (or a vanished entry): record and
			// keep walking the rest of the tree.
			fail(path, err)
			if d != nil && d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if d.IsDir() || !accept[strings.ToLower(filepath.Ext(path))] {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			// Permission denied, ELOOP from a self-referential
			// symlink, etc: skip the file, keep the target.
			fail(path, err)
			return nil
		}
		sources[path] = string(data)
		return nil
	})
	if err != nil {
		return core.Target{}, err
	}
	if len(sources) == 0 && len(loadFailures) == 0 {
		return core.Target{}, fmt.Errorf("no source files with extensions %v under %s", append(exts, ".inc"), p)
	}
	return core.Target{Name: name, Sources: sources, LoadFailures: loadFailures}, nil
}

func printReport(w io.Writer, rep *core.AppReport, verbose, smtOut bool) {
	verdict := "NOT VULNERABLE"
	if rep.Vulnerable {
		verdict = "VULNERABLE"
	}
	if rep.BudgetExceeded {
		verdict += " (analysis incomplete: budget exceeded)"
	}
	if rep.Aborted {
		verdict += " (scan aborted: too many root failures)"
	}
	fmt.Fprintf(w, "%s: %s\n", rep.Name, verdict)
	fmt.Fprintf(w, "  %d LoC, %.2f%% symbolically executed, %d paths, %d objects, %d sink candidates\n",
		rep.TotalLoC, rep.PercentAnalyzed, rep.Paths, rep.Objects, rep.SinkCount)
	if verbose {
		fmt.Fprintf(w, "  roots: %s\n", strings.Join(rep.Roots, ", "))
		fmt.Fprintf(w, "  %.1f MB, %.3f s, %d parse errors\n", rep.MemoryMB, rep.Seconds, rep.ParseErrors)
		if rep.Retries > 0 {
			fmt.Fprintf(w, "  degradation-ladder retries: %d\n", rep.Retries)
		}
		if len(rep.FailureCounts) > 0 {
			classes := make([]string, 0, len(rep.FailureCounts))
			for c := range rep.FailureCounts {
				classes = append(classes, string(c))
			}
			sort.Strings(classes)
			parts := make([]string, 0, len(classes))
			for _, c := range classes {
				parts = append(parts, fmt.Sprintf("%s=%d", c, rep.FailureCounts[core.FailureClass(c)]))
			}
			fmt.Fprintf(w, "  failures: %s\n", strings.Join(parts, " "))
		}
		for _, fl := range rep.Failures {
			fmt.Fprintf(w, "  failure: %s\n", fl)
		}
	}
	for _, f := range rep.Findings {
		gate := ""
		if f.AdminGated {
			gate = " [admin-gated]"
		}
		if f.Degraded {
			gate += " [degraded]"
		}
		fmt.Fprintf(w, "\n  finding: %s at %s:%d%s\n", f.Sink, f.File, f.Line, gate)
		if len(f.Lines) > 0 {
			fmt.Fprintf(w, "    relevant lines: %v\n", f.Lines)
		}
		if f.ExploitPath != "" {
			fmt.Fprintf(w, "    exploit lands at: %q\n", f.ExploitPath)
		}
		if f.SeDst != "" {
			fmt.Fprintf(w, "    se_dst   = %s\n", f.SeDst)
		}
		if f.SeReach != "nil" && f.SeReach != "" {
			fmt.Fprintf(w, "    se_reach = %s\n", f.SeReach)
		}
		if len(f.Witness) > 0 {
			fmt.Fprintf(w, "    witness:\n")
			keys := make([]string, 0, len(f.Witness))
			for k := range f.Witness {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "      %s = %s\n", k, f.Witness[k])
			}
		}
		if smtOut && f.SMTLIB != "" {
			fmt.Fprintf(w, "    SMT-LIB2:\n%s\n", indentLines(f.SMTLIB, "      "))
		}
	}
}

func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
