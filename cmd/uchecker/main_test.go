package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSplitExts(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{".php,.php5", []string{".php", ".php5"}},
		{"php, phtml", []string{".php", ".phtml"}},
		{"", nil},
		{" .asa ,, swf ", []string{".asa", ".swf"}},
	}
	for _, tt := range tests {
		if got := splitExts(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitExts(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLoadPaths(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "inc")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "main.php"):  "<?php echo 1;",
		filepath.Join(sub, "lib.php"):   "<?php echo 2;",
		filepath.Join(dir, "README.md"): "not php",
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, sources, err := loadPaths([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 {
		t.Errorf("sources = %d files, want 2 (README excluded)", len(sources))
	}

	// Single file.
	_, one, err := loadPaths([]string{filepath.Join(dir, "main.php")})
	if err != nil || len(one) != 1 {
		t.Errorf("single file: %v, %d", err, len(one))
	}

	// Missing path.
	if _, _, err := loadPaths([]string{filepath.Join(dir, "nope")}); err == nil {
		t.Error("missing path should error")
	}

	// Directory without PHP.
	empty := t.TempDir()
	if _, _, err := loadPaths([]string{empty}); err == nil {
		t.Error("no-php dir should error")
	}
}

func TestPrintReport(t *testing.T) {
	rep := core.New(core.Options{KeepSMT: true}).CheckSources("demo", map[string]string{
		"demo.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	})
	var sb strings.Builder
	printReport(&sb, rep, true, true)
	out := sb.String()
	for _, want := range []string{
		"VULNERABLE",
		"move_uploaded_file at demo.php:2",
		"exploit lands at",
		"se_dst",
		"witness:",
		"SMT-LIB2:",
		"str.suffixof",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPrintReportBenign(t *testing.T) {
	rep := core.New(core.Options{}).CheckSources("safe", map[string]string{
		"safe.php": `<?php echo "hello";`,
	})
	var sb strings.Builder
	printReport(&sb, rep, false, false)
	if !strings.Contains(sb.String(), "NOT VULNERABLE") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestIndentLines(t *testing.T) {
	if got := indentLines("a\nb\n", "  "); got != "  a\n  b" {
		t.Errorf("indentLines = %q", got)
	}
}
