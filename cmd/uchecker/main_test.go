package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSplitExts(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{".php,.php5", []string{".php", ".php5"}},
		{"php, phtml", []string{".php", ".phtml"}},
		{"", nil},
		{" .asa ,, swf ", []string{".asa", ".swf"}},
	}
	for _, tt := range tests {
		if got := splitExts(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitExts(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLoadTarget(t *testing.T) {
	exts := []string{".php", ".php5"}
	dir := t.TempDir()
	sub := filepath.Join(dir, "inc")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "main.php"):   "<?php echo 1;",
		filepath.Join(sub, "lib.php"):    "<?php echo 2;",
		filepath.Join(dir, "old.php5"):   "<?php echo 3;", // configured extension, not just .php
		filepath.Join(dir, "common.inc"): "<?php echo 4;", // .inc always accepted
		filepath.Join(dir, "README.md"):  "not php",
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tgt, err := loadTarget(dir, exts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.Sources) != 4 {
		t.Errorf("sources = %d files, want 4 (.php, .php5, .inc; README excluded): %v", len(tgt.Sources), tgt.Sources)
	}
	if tgt.Name != filepath.Base(dir) {
		t.Errorf("name = %q, want %q", tgt.Name, filepath.Base(dir))
	}

	// Narrower -ext still excludes unconfigured extensions.
	narrow, err := loadTarget(dir, []string{".php"})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Sources) != 3 {
		t.Errorf("narrow sources = %d files, want 3 (.php5 excluded)", len(narrow.Sources))
	}

	// Single file.
	one, err := loadTarget(filepath.Join(dir, "main.php"), exts)
	if err != nil || len(one.Sources) != 1 {
		t.Errorf("single file: %v, %d", err, len(one.Sources))
	}
	if one.Name != "main" {
		t.Errorf("single-file name = %q, want \"main\"", one.Name)
	}

	// Missing path.
	if _, err := loadTarget(filepath.Join(dir, "nope"), exts); err == nil {
		t.Error("missing path should error")
	}

	// Directory without PHP.
	empty := t.TempDir()
	if _, err := loadTarget(empty, exts); err == nil {
		t.Error("no-php dir should error")
	}
}

// TestLoadTargetCaseInsensitiveExtensions is the regression test for
// extension matching on case-preserving filesystems: real plugin zips
// ship UPLOAD.PHP and Common.Inc, and both the on-disk extension and the
// -ext flag values must match case-insensitively.
func TestLoadTargetCaseInsensitiveExtensions(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		filepath.Join(dir, "UPLOAD.PHP"): "<?php echo 1;",
		filepath.Join(dir, "Admin.PhP"):  "<?php echo 2;",
		filepath.Join(dir, "Common.Inc"): "<?php echo 3;", // .inc is always accepted
		filepath.Join(dir, "old.PHP5"):   "<?php echo 4;",
		filepath.Join(dir, "notes.TXT"):  "not php",
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tgt, err := loadTarget(dir, []string{".php", ".php5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.Sources) != 4 {
		t.Errorf("sources = %d files, want 4 (UPLOAD.PHP, Admin.PhP, Common.Inc, old.PHP5): %v",
			len(tgt.Sources), tgt.Sources)
	}

	// Configured extensions are themselves case-normalized: -ext .PHP
	// must accept upload.php and UPLOAD.PHP alike.
	upper, err := loadTarget(dir, []string{".PHP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(upper.Sources) != 3 {
		t.Errorf("upper-ext sources = %d files, want 3 (.PHP5 excluded): %v",
			len(upper.Sources), upper.Sources)
	}

	// Single file with uppercase extension: name trimming still applies.
	one, err := loadTarget(filepath.Join(dir, "UPLOAD.PHP"), []string{".php"})
	if err != nil || len(one.Sources) != 1 {
		t.Fatalf("single file: %v, %d", err, len(one.Sources))
	}
	if one.Name != "UPLOAD" {
		t.Errorf("single-file name = %q, want \"UPLOAD\"", one.Name)
	}
}

// TestTraceAndMetricsExport covers the -trace/-metrics plumbing end to
// end: a traced scan must export parseable Chrome trace-event JSON and
// well-formed Prometheus text with the expected metric lines.
func TestTraceAndMetricsExport(t *testing.T) {
	rec := core.NewTraceRecorder()
	rep, err := core.NewScanner(core.Options{Trace: rec}).Scan(
		context.Background(), core.Target{
			Name: "export-demo",
			Sources: map[string]string{
				"demo.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
			},
		})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	if err := writeTo(tracePath, func(w io.Writer) error {
		return core.WriteChromeTrace(w, rec.Snapshot())
	}); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Fatalf("malformed trace event: %v", ev)
		}
	}

	metricsPath := filepath.Join(dir, "metrics.txt")
	if err := writeTo(metricsPath, func(w io.Writer) error {
		return core.WritePrometheus(w, "uchecker", []core.LabeledMetrics{
			{Labels: map[string]string{"app": rep.Name}, Metrics: rep.Metrics},
		})
	}); err != nil {
		t.Fatal(err)
	}
	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(metricsData)
	for _, want := range []string{
		"# TYPE uchecker_scan_findings counter",
		`uchecker_scan_findings{app="export-demo"} 1`,
		"# TYPE uchecker_interp_live_envs_peak gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestPrintReport(t *testing.T) {
	rep, err := core.NewScanner(core.Options{KeepSMT: true}).Scan(context.Background(), core.Target{
		Name: "demo",
		Sources: map[string]string{
			"demo.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printReport(&sb, rep, true, true)
	out := sb.String()
	for _, want := range []string{
		"VULNERABLE",
		"move_uploaded_file at demo.php:2",
		"exploit lands at",
		"se_dst",
		"witness:",
		"SMT-LIB2:",
		"str.suffixof",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPrintReportBenign(t *testing.T) {
	rep, err := core.NewScanner(core.Options{}).Scan(context.Background(), core.Target{
		Name:    "safe",
		Sources: map[string]string{"safe.php": `<?php echo "hello";`},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printReport(&sb, rep, false, false)
	if !strings.Contains(sb.String(), "NOT VULNERABLE") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestIndentLines(t *testing.T) {
	if got := indentLines("a\nb\n", "  "); got != "  a\n  b" {
		t.Errorf("indentLines = %q", got)
	}
}

func TestExitCode(t *testing.T) {
	clean := &core.AppReport{Name: "clean"}
	vuln := &core.AppReport{Name: "vuln", Vulnerable: true}
	failed := &core.AppReport{
		Name:          "failed",
		FailureCounts: map[core.FailureClass]int{core.FailPanic: 1},
	}
	aborted := &core.AppReport{Name: "aborted", Aborted: true}

	tests := []struct {
		name   string
		ctxErr error
		reps   []*core.AppReport
		want   int
	}{
		{"clean", nil, []*core.AppReport{clean}, 0},
		{"vulnerable", nil, []*core.AppReport{clean, vuln}, 1},
		{"failures beat findings", nil, []*core.AppReport{vuln, failed}, 2},
		{"aborted", nil, []*core.AppReport{aborted}, 2},
		{"ctx error", context.DeadlineExceeded, []*core.AppReport{clean}, 2},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		if got := exitCode(tt.ctxErr, tt.reps); got != tt.want {
			t.Errorf("%s: exitCode = %d, want %d", tt.name, got, tt.want)
		}
	}
}

// TestLoadTargetUnreadable is the loader-robustness regression: an
// unreadable file (permission denied) and a self-referential symlink
// (ELOOP) inside a target directory must not abort the load. The target
// comes back with every readable source plus one typed load-stage
// failure per broken entry, so the report is visibly partial instead of
// the whole scan dying.
func TestLoadTargetUnreadable(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good.php"), []byte("<?php echo 1;"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Self-referential symlink with an accepted extension: ReadFile hits
	// ELOOP for every caller, including root.
	loop := filepath.Join(dir, "loop.php")
	if err := os.Symlink("loop.php", loop); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	// Permission-denied file: only enforceable for non-root callers
	// (root reads through mode 0).
	denied := filepath.Join(dir, "secret.php")
	if err := os.WriteFile(denied, []byte("<?php echo 2;"), 0o000); err != nil {
		t.Fatal(err)
	}

	tgt, err := loadTarget(dir, []string{".php"})
	if err != nil {
		t.Fatalf("unreadable entries must not abort the target: %v", err)
	}
	if _, ok := tgt.Sources[filepath.Join(dir, "good.php")]; !ok {
		t.Error("readable file lost")
	}
	wantFailures := 1 // the symlink loop
	if os.Getuid() != 0 {
		wantFailures = 2 // plus the permission-denied file
	} else {
		// Root reads mode-0 files; the content must then be present.
		if _, ok := tgt.Sources[denied]; !ok {
			t.Error("mode-0 file neither read nor recorded as a failure (running as root)")
		}
	}
	if len(tgt.LoadFailures) != wantFailures {
		t.Fatalf("LoadFailures = %+v, want %d entries", tgt.LoadFailures, wantFailures)
	}
	seen := map[string]bool{}
	for _, fl := range tgt.LoadFailures {
		if fl.Stage != core.StageLoad || fl.Class != core.FailLoad || fl.Err == "" {
			t.Errorf("malformed load failure: %+v", fl)
		}
		seen[fl.Root] = true
	}
	if !seen[loop] {
		t.Errorf("symlink loop not recorded: %+v", tgt.LoadFailures)
	}

	// The failures flow through to the report and force exit status 2.
	rep, err := core.NewScanner(core.Options{}).Scan(context.Background(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailureCounts[core.FailLoad] != wantFailures {
		t.Errorf("FailureCounts[load] = %d, want %d", rep.FailureCounts[core.FailLoad], wantFailures)
	}
	if rep.FailureCounts[core.FailParse] != 0 {
		t.Errorf("I/O load failures leaked into FailureCounts[parse]: %v", rep.FailureCounts)
	}
	if got := exitCode(nil, []*core.AppReport{rep}); got != 2 {
		t.Errorf("exitCode = %d, want 2 for a partially loaded target", got)
	}

	// A directory that is nothing but broken entries still loads (with
	// failures) rather than erroring as "no source files".
	broken := t.TempDir()
	if err := os.Symlink("self.php", filepath.Join(broken, "self.php")); err != nil {
		t.Fatal(err)
	}
	onlyBad, err := loadTarget(broken, []string{".php"})
	if err != nil {
		t.Fatalf("all-broken dir must load with failures: %v", err)
	}
	if len(onlyBad.Sources) != 0 || len(onlyBad.LoadFailures) != 1 {
		t.Errorf("all-broken dir: %d sources, %+v", len(onlyBad.Sources), onlyBad.LoadFailures)
	}
}

// TestWriteToAtomic: a failed -trace/-metrics export must leave the
// previous file byte-identical and no temp litter (satellite regression
// for the atomic-export path).
func TestWriteToAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.prom")
	if err := writeTo(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "old\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("export exploded")
	if err := writeTo(path, func(w io.Writer) error {
		io.WriteString(w, "half-written")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the export failure", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old\n" {
		t.Fatalf("previous export clobbered: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp litter: %v", entries)
	}
}

// TestPrintReportFailures asserts the verbose report carries the per-class
// failure summary, individual failure records and degraded markers.
func TestPrintReportFailures(t *testing.T) {
	rep := &core.AppReport{
		Name:    "broken",
		Retries: 2,
		Findings: []core.Finding{
			{Sink: "move_uploaded_file", File: "a.php", Line: 3, Degraded: true},
		},
		Failures: []core.Failure{
			{Root: "file:a.php", Stage: "symexec", Class: core.FailPathBudget, Err: "budget exceeded"},
			{Root: "file:b.php", Stage: "symexec", Class: core.FailPanic, Err: "boom"},
		},
		FailureCounts: map[core.FailureClass]int{
			core.FailPathBudget: 1,
			core.FailPanic:      1,
		},
		Aborted: true,
	}
	var sb strings.Builder
	printReport(&sb, rep, true, false)
	out := sb.String()
	for _, want := range []string{
		"scan aborted: too many root failures",
		"degradation-ladder retries: 2",
		"failures: panic=1 path-budget=1",
		"failure: file:a.php: [symexec/path-budget] budget exceeded",
		"failure: file:b.php: [symexec/panic] boom",
		"[degraded]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
