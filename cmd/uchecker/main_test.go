package main

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSplitExts(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{".php,.php5", []string{".php", ".php5"}},
		{"php, phtml", []string{".php", ".phtml"}},
		{"", nil},
		{" .asa ,, swf ", []string{".asa", ".swf"}},
	}
	for _, tt := range tests {
		if got := splitExts(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitExts(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLoadTarget(t *testing.T) {
	exts := []string{".php", ".php5"}
	dir := t.TempDir()
	sub := filepath.Join(dir, "inc")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "main.php"):   "<?php echo 1;",
		filepath.Join(sub, "lib.php"):    "<?php echo 2;",
		filepath.Join(dir, "old.php5"):   "<?php echo 3;", // configured extension, not just .php
		filepath.Join(dir, "common.inc"): "<?php echo 4;", // .inc always accepted
		filepath.Join(dir, "README.md"):  "not php",
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tgt, err := loadTarget(dir, exts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.Sources) != 4 {
		t.Errorf("sources = %d files, want 4 (.php, .php5, .inc; README excluded): %v", len(tgt.Sources), tgt.Sources)
	}
	if tgt.Name != filepath.Base(dir) {
		t.Errorf("name = %q, want %q", tgt.Name, filepath.Base(dir))
	}

	// Narrower -ext still excludes unconfigured extensions.
	narrow, err := loadTarget(dir, []string{".php"})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Sources) != 3 {
		t.Errorf("narrow sources = %d files, want 3 (.php5 excluded)", len(narrow.Sources))
	}

	// Single file.
	one, err := loadTarget(filepath.Join(dir, "main.php"), exts)
	if err != nil || len(one.Sources) != 1 {
		t.Errorf("single file: %v, %d", err, len(one.Sources))
	}
	if one.Name != "main" {
		t.Errorf("single-file name = %q, want \"main\"", one.Name)
	}

	// Missing path.
	if _, err := loadTarget(filepath.Join(dir, "nope"), exts); err == nil {
		t.Error("missing path should error")
	}

	// Directory without PHP.
	empty := t.TempDir()
	if _, err := loadTarget(empty, exts); err == nil {
		t.Error("no-php dir should error")
	}
}

func TestPrintReport(t *testing.T) {
	rep := core.New(core.Options{KeepSMT: true}).CheckSources("demo", map[string]string{
		"demo.php": `<?php
move_uploaded_file($_FILES['f']['tmp_name'], "/up/" . $_FILES['f']['name']);
`,
	})
	var sb strings.Builder
	printReport(&sb, rep, true, true)
	out := sb.String()
	for _, want := range []string{
		"VULNERABLE",
		"move_uploaded_file at demo.php:2",
		"exploit lands at",
		"se_dst",
		"witness:",
		"SMT-LIB2:",
		"str.suffixof",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPrintReportBenign(t *testing.T) {
	rep := core.New(core.Options{}).CheckSources("safe", map[string]string{
		"safe.php": `<?php echo "hello";`,
	})
	var sb strings.Builder
	printReport(&sb, rep, false, false)
	if !strings.Contains(sb.String(), "NOT VULNERABLE") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestIndentLines(t *testing.T) {
	if got := indentLines("a\nb\n", "  "); got != "  a\n  b" {
		t.Errorf("indentLines = %q", got)
	}
}

func TestExitCode(t *testing.T) {
	clean := &core.AppReport{Name: "clean"}
	vuln := &core.AppReport{Name: "vuln", Vulnerable: true}
	failed := &core.AppReport{
		Name:          "failed",
		FailureCounts: map[core.FailureClass]int{core.FailPanic: 1},
	}
	aborted := &core.AppReport{Name: "aborted", Aborted: true}

	tests := []struct {
		name   string
		ctxErr error
		reps   []*core.AppReport
		want   int
	}{
		{"clean", nil, []*core.AppReport{clean}, 0},
		{"vulnerable", nil, []*core.AppReport{clean, vuln}, 1},
		{"failures beat findings", nil, []*core.AppReport{vuln, failed}, 2},
		{"aborted", nil, []*core.AppReport{aborted}, 2},
		{"ctx error", context.DeadlineExceeded, []*core.AppReport{clean}, 2},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		if got := exitCode(tt.ctxErr, tt.reps); got != tt.want {
			t.Errorf("%s: exitCode = %d, want %d", tt.name, got, tt.want)
		}
	}
}

// TestPrintReportFailures asserts the verbose report carries the per-class
// failure summary, individual failure records and degraded markers.
func TestPrintReportFailures(t *testing.T) {
	rep := &core.AppReport{
		Name:    "broken",
		Retries: 2,
		Findings: []core.Finding{
			{Sink: "move_uploaded_file", File: "a.php", Line: 3, Degraded: true},
		},
		Failures: []core.Failure{
			{Root: "file:a.php", Stage: "symexec", Class: core.FailPathBudget, Err: "budget exceeded"},
			{Root: "file:b.php", Stage: "symexec", Class: core.FailPanic, Err: "boom"},
		},
		FailureCounts: map[core.FailureClass]int{
			core.FailPathBudget: 1,
			core.FailPanic:      1,
		},
		Aborted: true,
	}
	var sb strings.Builder
	printReport(&sb, rep, true, false)
	out := sb.String()
	for _, want := range []string{
		"scan aborted: too many root failures",
		"degradation-ladder retries: 2",
		"failures: panic=1 path-budget=1",
		"failure: file:a.php: [symexec/path-budget] budget exceeded",
		"failure: file:b.php: [symexec/panic] boom",
		"[degraded]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
