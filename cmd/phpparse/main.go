// Command phpparse is a debugging tool for the PHP frontend: it dumps
// tokens, ASTs, or the extended call graph (Graphviz) for PHP sources.
//
//	phpparse -tokens file.php
//	phpparse -ast file.php
//	phpparse -callgraph dir/         # Graphviz dot on stdout
//	phpparse -locality dir/          # locality-analysis summary
//	phpparse -symex dir/             # per-path symbolic state for the roots
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/interp"
	"repro/internal/locality"
	"repro/internal/phpast"
	"repro/internal/phplex"
	"repro/internal/phpparser"
	"repro/internal/phptoken"
	"repro/internal/sexpr"
)

func main() {
	var (
		tokens = flag.Bool("tokens", false, "dump tokens")
		ast    = flag.Bool("ast", false, "dump AST")
		cg     = flag.Bool("callgraph", false, "dump extended call graph as Graphviz dot")
		loc    = flag.Bool("locality", false, "run the locality analysis and print roots")
		symex  = flag.Bool("symex", false, "symbolically execute the locality roots and print per-path state")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: phpparse [-tokens|-ast|-callgraph|-locality] <file-or-dir>...")
		os.Exit(2)
	}
	sources, err := load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpparse: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *tokens:
		for name, src := range sources {
			fmt.Printf("== %s ==\n", name)
			lex := phplex.New(name, src)
			for {
				tok := lex.Next()
				fmt.Println(tok)
				if tok.Kind == phptoken.EOF {
					break
				}
			}
		}
	case *ast:
		for name, src := range sources {
			f, errs := phpparser.Parse(name, src)
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, e)
			}
			fmt.Print(phpast.Dump(f))
		}
	case *cg:
		g := callgraph.Build(parseAll(sources))
		fmt.Print(g.Dot())
	case *loc:
		files := parseAll(sources)
		g := callgraph.Build(files)
		res := locality.Analyze(g, files, sources)
		fmt.Printf("total LoC: %d, analyzed: %d (%.2f%%)\n", res.TotalLoC, res.AnalyzedLoC, res.PercentAnalyzed())
		for _, r := range res.Roots {
			fmt.Printf("root: %s (%d lines)\n", r.Node, r.Lines)
		}
	case *symex:
		files := parseAll(sources)
		g := callgraph.Build(files)
		res := locality.Analyze(g, files, sources)
		for _, r := range res.Roots {
			fmt.Printf("== root %s ==\n", r.Node)
			in := interp.New(files, interp.Options{})
			out := in.RunRoot(r.Node)
			fmt.Printf("paths: %d, objects: %d, sinks: %d\n",
				out.Paths, out.Graph.NumObjects(), len(out.Sinks))
			for i, env := range out.Envs {
				if i >= 8 {
					fmt.Printf("  … %d more paths\n", len(out.Envs)-i)
					break
				}
				fmt.Printf("  path %d: reach = %s\n", i+1, sexpr.Format(out.Graph.ToSexpr(env.Cur)))
				for _, v := range env.VarNames() {
					fmt.Printf("    $%s = %s\n", v, sexpr.Format(out.Graph.ToSexpr(env.Get(v))))
				}
			}
			for _, hit := range out.Sinks {
				fmt.Printf("  sink %s at %s:%d, dst = %s\n",
					hit.Sink, hit.File, hit.Line, sexpr.Format(out.Graph.ToSexpr(hit.Dst)))
			}
		}
	default:
		for name, src := range sources {
			f, errs := phpparser.Parse(name, src)
			fmt.Printf("%s: %d top-level statements, %d parse errors\n", name, len(f.Stmts), len(errs))
		}
	}
}

func parseAll(sources map[string]string) []*phpast.File {
	var files []*phpast.File
	for name, src := range sources {
		f, _ := phpparser.Parse(name, src)
		files = append(files, f)
	}
	return files
}

func load(paths []string) (map[string]string, error) {
	sources := map[string]string{}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			sources[p] = string(data)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".php") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sources[path] = string(data)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return sources, nil
}
