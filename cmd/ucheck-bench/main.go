// Command ucheck-bench regenerates the UChecker paper's evaluation
// artifacts over the synthetic corpus:
//
//	ucheck-bench -table       # Table III (default)
//	ucheck-bench -compare     # Section IV-C tool comparison
//	ucheck-bench -all         # both
//	ucheck-bench -screen 500  # Section IV-B screening sweep over 500 plugins
//	ucheck-bench -paper       # also print the paper's numbers side by side
//	ucheck-bench -phases      # per-app, per-phase timing breakdown
//	ucheck-bench -failures    # per-class failure tally of the Table III sweep
//	ucheck-bench -counters    # deterministic work-counter table of the sweep
//	ucheck-bench -engine vm   # run symbolic execution on the bytecode VM
//	ucheck-bench -interproc summary
//	                          # per-function symbolic summaries with
//	                          # statement-boundary path merging; prints a
//	                          # Cimy before/after block under -table
//	ucheck-bench -workers 8   # scanner worker pool (default GOMAXPROCS)
//	ucheck-bench -journal F   # journal the Table III sweep to F (crash-safe)
//	ucheck-bench -resume F    # resume a killed sweep from journal F
//	ucheck-bench -cache DIR   # replay unchanged apps from a result cache
//	ucheck-bench -coord DIR   # join a distributed Table III sweep as one
//	                          # worker (launch N processes with the same
//	                          # DIR; lease-based shards, crash reclaim,
//	                          # deterministic merged table)
//
// With -journal/-resume/-cache the Table III sweep runs through the
// crash-safe batch path: kill it at any point and re-run with
// `-journal F -resume F` to continue where it stopped — completed apps
// replay from the journal byte-identically instead of re-scanning. The
// batch path does not sample per-app memory, so the Mem(MB) column
// reads 0 there.
//
// The -max-paths flag lowers the symbolic-execution budget (useful on
// small machines: 20000 still reproduces every verdict including the Cimy
// false negative, at a fraction of the memory). The -phases breakdown is
// the CLI face of bench_test.go's BenchmarkScanSerial/BenchmarkScanParallel
// pair: interp+verify are summed per-root CPU seconds, scan is
// wall-clock, and their ratio is the per-root parallel speedup.
//
// -engine vm selects the bytecode-VM execution engine (findings and
// counters are byte-identical to the default tree walker; the VM
// additionally reports ir_*/vm_* counters under -counters).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/evalharness"
	"repro/internal/interp"
	"repro/internal/uchecker"
)

func main() {
	var (
		table     = flag.Bool("table", false, "regenerate Table III")
		compare   = flag.Bool("compare", false, "regenerate the Section IV-C comparison")
		all       = flag.Bool("all", false, "regenerate everything")
		screen    = flag.Int("screen", 0, "run a Section IV-B screening sweep over N generated plugins")
		plant     = flag.Int("plant", 20, "seed one vulnerable plugin every N positions in the sweep")
		seed      = flag.Int64("seed", 1, "screening generator seed")
		paper     = flag.Bool("paper", false, "print paper numbers next to measured ones")
		phases    = flag.Bool("phases", false, "print a per-app, per-phase timing breakdown")
		failures  = flag.Bool("failures", false, "print the per-class failure tally of the Table III sweep")
		counters  = flag.Bool("counters", false, "print the deterministic work-counter table of the Table III sweep")
		workers   = flag.Int("workers", 0, "scanner worker pool size (0 = GOMAXPROCS)")
		engine    = flag.String("engine", "", "symbolic-execution engine: tree (default) or vm")
		interproc = flag.String("interproc", "", "interprocedural strategy: inline (default) or summary")
		maxPaths  = flag.Int("max-paths", 0, "path budget (0 = paper-scale default)")
		journal   = flag.String("journal", "", "journal the Table III sweep to this file (crash-safe)")
		resume    = flag.String("resume", "", "resume the Table III sweep from this journal")
		cacheDir  = flag.String("cache", "", "content-addressed result cache directory")
		noIntern  = flag.Bool("no-intern", false, "disable SMT term interning/memoization (ablation; findings are identical)")
		coordDir  = flag.String("coord", "", "join a distributed Table III sweep as one worker over this coordination directory")
		workerID  = flag.String("worker-id", "", "worker name in lease records (default: w<pid>)")
		shardSize = flag.Int("shard-size", 0, "targets per lease shard in -coord mode (0 = default)")
	)
	flag.Parse()
	if !*table && !*compare && !*all && *screen == 0 && !*failures && !*counters {
		*table = true
	}

	engineKind, err := interp.ParseEngineKind(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucheck-bench: %v\n", err)
		os.Exit(2)
	}
	interprocKind, err := interp.ParseInterprocKind(*interproc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucheck-bench: %v\n", err)
		os.Exit(2)
	}
	opts := uchecker.Options{
		Budgets:       uchecker.Budgets{MaxPaths: *maxPaths},
		Engine:        engineKind,
		Interproc:     interprocKind,
		Workers:       *workers,
		Journal:       *journal,
		ResumeFrom:    *resume,
		CacheDir:      *cacheDir,
		DisableIntern: *noIntern,
	}
	crashSafe := *journal != "" || *resume != "" || *cacheDir != ""
	var times *evalharness.PhaseTimes
	if *phases {
		times = evalharness.NewPhaseTimes()
		opts.OnSpan = times.SpanHook()
	}

	if *coordDir != "" {
		if crashSafe {
			fmt.Fprintln(os.Stderr, "ucheck-bench: -coord manages its own shard journals and cache; drop -journal/-resume/-cache")
			os.Exit(2)
		}
		os.Exit(runDistributed(opts, *coordDir, *workerID, *shardSize, *paper))
	}

	if *table || *all || *failures || *counters {
		var rows []evalharness.Row
		if crashSafe {
			var stats *uchecker.BatchStats
			var err error
			rows, stats, err = evalharness.TableIIIBatch(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ucheck-bench: sweep aborted: %v (re-run with -journal %s -resume %s to continue)\n",
					err, *journal, *journal)
				os.Exit(2)
			}
			fmt.Printf("sweep: %d targets, %d scanned, %d replayed from journal, %d cache hits, %d salvaged records\n\n",
				stats.Targets, stats.Scanned, stats.Replayed, stats.CacheHits, stats.SalvagedRecords)
			for _, fl := range stats.Failures {
				fmt.Printf("sweep failure: %s\n", fl)
			}
		} else {
			rows = evalharness.TableIII(opts)
		}
		if *table || *all {
			fmt.Print(evalharness.RenderTableIII(rows))
			if *paper {
				fmt.Println()
				printPaperComparison(rows)
			}
			fmt.Println()
			if interprocKind == interp.InterprocSummary {
				// The strategy's headline: the Cimy path explosion,
				// before and after, under otherwise identical options.
				before, after := evalharness.CimyBeforeAfter(opts)
				fmt.Print(evalharness.RenderCimyBeforeAfter(before, after))
				fmt.Println()
			}
		}
		reps := make([]*uchecker.AppReport, len(rows))
		for i, r := range rows {
			reps[i] = r.Report
		}
		if *failures {
			fmt.Print(evalharness.RenderFailureTally(evalharness.FailureTally(reps)))
			fmt.Println()
		}
		if *counters {
			fmt.Print(evalharness.RenderCounterTable(evalharness.CounterTally(reps)))
			fmt.Println()
		}
	}
	if *screen > 0 {
		res := evalharness.Screening(opts, *seed, *screen, *plant)
		fmt.Print(evalharness.RenderScreening(res))
		fmt.Println()
	}
	if *compare || *all {
		results := evalharness.Comparison(opts)
		fmt.Print(evalharness.RenderComparison(results))
		if *paper {
			fmt.Println("\nPaper (Section IV-C): UChecker 15/16, 2/28 FP; RIPS 15/16, 27/28 FP; WAP 4/16, 1/28 FP")
		}
	}
	if times != nil {
		fmt.Println()
		fmt.Print(times.Render())
	}
	os.Exit(0)
}

// runDistributed joins a coordination directory as one worker of a
// distributed Table III sweep. Launch the same command in N processes
// (or machines sharing a filesystem): each claims leased shards, dead
// workers are reclaimed via fencing tokens, and whichever worker folds
// the merged report prints the table. SIGTERM drains gracefully
// (finished apps stay journaled for the fleet; exit 2).
func runDistributed(opts uchecker.Options, coordDir, workerID string, shardSize int, paper bool) int {
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		close(drain)
	}()

	ws, rows, err := evalharness.TableIIIWorker(context.Background(), opts, uchecker.WorkerOptions{
		CoordDir:  coordDir,
		WorkerID:  workerID,
		ShardSize: shardSize,
		Drain:     drain,
	})
	if ws != nil {
		fmt.Fprintf(os.Stderr, "ucheck-bench: worker %s: %d shards published (%d reclaimed), %d leases lost to reclaim\n",
			ws.Worker, ws.ShardsScanned, ws.ShardsReclaimed, ws.Fenced)
	}
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "ucheck-bench: worker aborted: %v (the fleet reclaims this worker's leases; re-run with the same -coord to continue)\n", err)
		return 2
	case ws.Drained:
		fmt.Fprintln(os.Stderr, "ucheck-bench: worker drained: finished apps are journaled; run another worker with the same -coord to complete the sweep")
		return 2
	case rows == nil:
		fmt.Fprintln(os.Stderr, "ucheck-bench: worker exited without a merged report")
		return 2
	}
	fmt.Print(evalharness.RenderTableIII(rows))
	if paper {
		fmt.Println()
		printPaperComparison(rows)
	}
	fmt.Println()
	return 0
}

func printPaperComparison(rows []evalharness.Row) {
	fmt.Println("Paper vs measured:")
	fmt.Printf("%-55s %16s %16s %14s %8s\n", "System", "%Analyzed (p/m)", "Paths (p/m)", "Objects (p/m)", "Verdict")
	for _, r := range rows {
		p := r.App.Paper
		if p == nil {
			continue
		}
		match := "match"
		if p.Detected != r.Detected() {
			match = "MISMATCH"
		}
		fmt.Printf("%-55s %7.2f/%7.2f %8d/%7d %7d/%7d %8s\n",
			r.App.Name, p.PctAnalyzed, r.Report.PercentAnalyzed,
			p.Paths, r.Report.Paths, p.Objects, r.Report.Objects, match)
	}
}
